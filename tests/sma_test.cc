#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/sma/size_classes.h"
#include "src/sma/soft_memory_allocator.h"

namespace softmem {
namespace {

// ---- Size classes -------------------------------------------------------------

TEST(SizeClassTest, EveryClassFitsItself) {
  for (size_t i = 0; i < kNumSizeClasses; ++i) {
    EXPECT_EQ(SizeClassFor(kSizeClasses[i]), static_cast<int>(i));
  }
}

TEST(SizeClassTest, RoundsUpToSmallestFittingClass) {
  for (size_t size = 1; size <= kMaxSmallSize; ++size) {
    const int cls = SizeClassFor(size);
    EXPECT_GE(SizeClassBytes(cls), size);
    if (cls > 0) {
      EXPECT_LT(SizeClassBytes(cls - 1), size)
          << "class " << cls << " not minimal for size " << size;
    }
  }
}

TEST(SizeClassTest, OneKiBPacksFourPerPage) {
  const int cls = SizeClassFor(1024);
  EXPECT_EQ(SizeClassBytes(cls), 1024u);
  EXPECT_EQ(SlotsPerPage(cls), 4u);
}

// ---- Allocator fixtures ---------------------------------------------------------

SmaOptions SmallOptions(size_t region_pages = 1024,
                        size_t budget_pages = 1024) {
  SmaOptions o;
  o.region_pages = region_pages;
  o.initial_budget_pages = budget_pages;
  o.use_mmap = false;  // SimPageSource: portable + poisoned decommit
  return o;
}

std::unique_ptr<SoftMemoryAllocator> MakeSma(
    SmaOptions options = SmallOptions()) {
  auto r = SoftMemoryAllocator::Create(options);
  EXPECT_TRUE(r.ok()) << r.status();
  return std::move(r).value();
}

// ---- Basic allocation ------------------------------------------------------------

TEST(SmaTest, MallocFreeRoundTrip) {
  auto sma = MakeSma();
  void* p = sma->SoftMalloc(100);
  ASSERT_NE(p, nullptr);
  std::memset(p, 0x5A, 100);
  EXPECT_GE(sma->AllocationSize(p), 100u);
  EXPECT_TRUE(sma->Owns(p));
  sma->SoftFree(p);
  const SmaStats s = sma->GetStats();
  EXPECT_EQ(s.total_allocs, 1u);
  EXPECT_EQ(s.total_frees, 1u);
  EXPECT_EQ(s.live_allocations, 0u);
}

TEST(SmaTest, ZeroSizeAllocates) {
  auto sma = MakeSma();
  void* p = sma->SoftMalloc(0);
  ASSERT_NE(p, nullptr);
  sma->SoftFree(p);
}

TEST(SmaTest, NullFreeIsNoop) {
  auto sma = MakeSma();
  sma->SoftFree(nullptr);
  EXPECT_EQ(sma->GetStats().total_frees, 0u);
}

TEST(SmaTest, DistinctPointersNoOverlap) {
  auto sma = MakeSma();
  constexpr int kN = 1000;
  constexpr size_t kSize = 48;
  std::vector<char*> ptrs;
  for (int i = 0; i < kN; ++i) {
    auto* p = static_cast<char*>(sma->SoftMalloc(kSize));
    ASSERT_NE(p, nullptr);
    std::memset(p, i % 251, kSize);
    ptrs.push_back(p);
  }
  // Every allocation still holds its pattern: no overlap.
  for (int i = 0; i < kN; ++i) {
    for (size_t b = 0; b < kSize; ++b) {
      ASSERT_EQ(static_cast<unsigned char>(ptrs[i][b]), i % 251);
    }
  }
  for (char* p : ptrs) {
    sma->SoftFree(p);
  }
}

TEST(SmaTest, SlotReuseAfterFree) {
  auto sma = MakeSma();
  void* a = sma->SoftMalloc(64);
  sma->SoftFree(a);
  void* b = sma->SoftMalloc(64);
  EXPECT_EQ(a, b) << "freed slot should be reused first";
  sma->SoftFree(b);
}

TEST(SmaTest, LargeAllocationSpansPages) {
  auto sma = MakeSma();
  const size_t size = 3 * kPageSize + 100;
  auto* p = static_cast<char*>(sma->SoftMalloc(size));
  ASSERT_NE(p, nullptr);
  std::memset(p, 0x77, size);
  EXPECT_EQ(sma->AllocationSize(p), size);
  const SmaStats before = sma->GetStats();
  EXPECT_GE(before.in_use_pages, 4u);
  sma->SoftFree(p);
  EXPECT_EQ(sma->GetStats().live_allocations, 0u);
}

TEST(SmaTest, ManySizesStressWithPatternCheck) {
  auto sma = MakeSma(SmallOptions(16384, 16384));  // 64 MiB
  Rng rng(42);
  struct Alloc {
    char* ptr;
    size_t size;
    unsigned char tag;
  };
  std::vector<Alloc> live;
  for (int step = 0; step < 30000; ++step) {
    if (live.empty() || rng.NextBool(0.55)) {
      const size_t size = 1 + rng.NextBounded(3 * kPageSize);
      auto* p = static_cast<char*>(sma->SoftMalloc(size));
      ASSERT_NE(p, nullptr);
      const auto tag = static_cast<unsigned char>(rng.NextBounded(256));
      std::memset(p, tag, size);
      live.push_back({p, size, tag});
    } else {
      const size_t i = rng.NextBounded(live.size());
      // Verify pattern before freeing: catches any allocator scribbling.
      for (size_t b = 0; b < live[i].size; b += 97) {
        ASSERT_EQ(static_cast<unsigned char>(live[i].ptr[b]), live[i].tag);
      }
      sma->SoftFree(live[i].ptr);
      live[i] = live.back();
      live.pop_back();
    }
  }
  const SmaStats s = sma->GetStats();
  EXPECT_EQ(s.live_allocations, live.size());
}

// ---- Budget enforcement -----------------------------------------------------------

TEST(SmaTest, BudgetCapsCommittedPages) {
  auto sma = MakeSma(SmallOptions(/*region=*/1024, /*budget=*/4));
  // 4 pages of budget with 1 KiB allocs (4/page) = 16 allocations max
  // (modulo the retained-empty hysteresis, which only applies after frees).
  std::vector<void*> ptrs;
  for (int i = 0; i < 16; ++i) {
    void* p = sma->SoftMalloc(1024);
    ASSERT_NE(p, nullptr) << "allocation " << i << " within budget failed";
    ptrs.push_back(p);
  }
  EXPECT_EQ(sma->SoftMalloc(1024), nullptr) << "allocation beyond budget";
  EXPECT_LE(sma->committed_pages(), 4u);
  const SmaStats s = sma->GetStats();
  EXPECT_GE(s.budget_requests, 1u);
  EXPECT_GE(s.budget_request_failures, 1u);
  for (void* p : ptrs) {
    sma->SoftFree(p);
  }
}

TEST(SmaTest, FreedPagesReusedUnderSameBudget) {
  auto sma = MakeSma(SmallOptions(1024, 4));
  std::vector<void*> ptrs;
  for (int i = 0; i < 16; ++i) {
    ptrs.push_back(sma->SoftMalloc(1024));
    ASSERT_NE(ptrs.back(), nullptr);
  }
  for (void* p : ptrs) {
    sma->SoftFree(p);
  }
  // All pages free again: the same budget serves another 16 allocations.
  for (int i = 0; i < 16; ++i) {
    ASSERT_NE(sma->SoftMalloc(1024), nullptr);
  }
}

// Granting channel: approves every request up to a capacity.
class FixedCapacityChannel : public SmdChannel {
 public:
  explicit FixedCapacityChannel(size_t capacity_pages)
      : remaining_(capacity_pages) {}

  Result<size_t> RequestBudget(size_t pages) override {
    ++requests_;
    const size_t grant = std::min(pages, remaining_);
    if (grant == 0) {
      return DeniedError("capacity exhausted");
    }
    remaining_ -= grant;
    return grant;
  }
  void ReleaseBudget(size_t pages) override { remaining_ += pages; }
  void ReportUsage(size_t soft_pages, size_t traditional_bytes) override {
    last_soft_pages_ = soft_pages;
    last_traditional_bytes_ = traditional_bytes;
  }

  size_t requests() const { return requests_; }
  size_t remaining() const { return remaining_; }
  size_t last_soft_pages() const { return last_soft_pages_; }
  size_t last_traditional_bytes() const { return last_traditional_bytes_; }

 private:
  size_t remaining_;
  size_t requests_ = 0;
  size_t last_soft_pages_ = 0;
  size_t last_traditional_bytes_ = 0;
};

TEST(SmaTest, GrowsBudgetThroughChannel) {
  FixedCapacityChannel channel(/*capacity_pages=*/64);
  SmaOptions o = SmallOptions(1024, /*budget=*/0);
  o.budget_chunk_pages = 8;
  auto r = SoftMemoryAllocator::Create(o, &channel);
  ASSERT_TRUE(r.ok());
  auto sma = std::move(r).value();

  // 256 KiB of 1 KiB allocations needs 64 pages, all from the channel.
  std::vector<void*> ptrs;
  for (int i = 0; i < 256; ++i) {
    void* p = sma->SoftMalloc(1024);
    ASSERT_NE(p, nullptr) << "i=" << i;
    ptrs.push_back(p);
  }
  EXPECT_EQ(sma->budget_pages(), 64u);
  // Requests arrive in chunks, amortized over many allocations (§5 case 2).
  EXPECT_EQ(channel.requests(), 64u / 8u);
  EXPECT_EQ(sma->SoftMalloc(1024), nullptr);
  for (void* p : ptrs) {
    sma->SoftFree(p);
  }
}

// ---- Contexts ---------------------------------------------------------------------

TEST(SmaTest, ContextsHaveIsolatedHeaps) {
  auto sma = MakeSma();
  ContextOptions co;
  co.name = "list-a";
  auto a = sma->CreateContext(co);
  co.name = "list-b";
  auto b = sma->CreateContext(co);
  ASSERT_TRUE(a.ok() && b.ok());

  void* pa = sma->SoftMalloc(*a, 128);
  void* pb = sma->SoftMalloc(*b, 128);
  ASSERT_NE(pa, nullptr);
  ASSERT_NE(pb, nullptr);
  // Isolated heaps: allocations from different contexts never share a page.
  const auto page_a = reinterpret_cast<uintptr_t>(pa) / kPageSize;
  const auto page_b = reinterpret_cast<uintptr_t>(pb) / kPageSize;
  EXPECT_NE(page_a, page_b);

  auto sa = sma->GetContextStats(*a);
  ASSERT_TRUE(sa.ok());
  EXPECT_EQ(sa->live_allocations, 1u);
  EXPECT_EQ(sa->owned_pages, 1u);
  EXPECT_EQ(sa->name, "list-a");
}

TEST(SmaTest, DestroyContextReleasesEverything) {
  auto sma = MakeSma();
  ContextOptions co;
  co.name = "scratch";
  auto ctx = sma->CreateContext(co);
  ASSERT_TRUE(ctx.ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_NE(sma->SoftMalloc(*ctx, 512), nullptr);
  }
  ASSERT_NE(sma->SoftMalloc(*ctx, 3 * kPageSize), nullptr);  // large too
  const size_t in_use_before = sma->GetStats().in_use_pages;
  EXPECT_GT(in_use_before, 0u);

  ASSERT_TRUE(sma->DestroyContext(*ctx).ok());
  const SmaStats s = sma->GetStats();
  EXPECT_EQ(s.live_allocations, 0u);
  EXPECT_EQ(s.in_use_pages, 0u);
  EXPECT_EQ(s.pooled_pages, in_use_before);  // pages back in the pool
  // Further use of the dead context fails cleanly.
  EXPECT_EQ(sma->SoftMalloc(*ctx, 64), nullptr);
  EXPECT_EQ(sma->DestroyContext(*ctx).code(), StatusCode::kNotFound);
}

TEST(SmaTest, DefaultContextCannotBeDestroyed) {
  auto sma = MakeSma();
  EXPECT_EQ(sma->DestroyContext(sma->default_context()).code(),
            StatusCode::kInvalidArgument);
}

// ---- Reclamation ---------------------------------------------------------------

TEST(SmaTest, ReclaimTier0BudgetSlack) {
  auto sma = MakeSma(SmallOptions(1024, /*budget=*/100));
  // Nothing committed: the whole demand is satisfied from budget slack.
  EXPECT_EQ(sma->HandleReclaimDemand(30), 30u);
  EXPECT_EQ(sma->budget_pages(), 70u);
  EXPECT_EQ(sma->GetStats().reclaim_callbacks, 0u);
}

TEST(SmaTest, ReclaimTier0PooledPages) {
  SmaOptions o = SmallOptions(1024, 100);
  o.heap_retain_empty_pages = 0;  // frees go straight to the pool
  auto sma = MakeSma(o);
  std::vector<void*> ptrs;
  for (int i = 0; i < 40; ++i) {  // 10 pages of 1 KiB slots
    ptrs.push_back(sma->SoftMalloc(1024));
    ASSERT_NE(ptrs.back(), nullptr);
  }
  for (void* p : ptrs) {
    sma->SoftFree(p);
  }
  EXPECT_EQ(sma->GetStats().pooled_pages, 10u);
  const size_t committed_before = sma->committed_pages();

  // Demand more than slack alone: 90 slack + 10 pooled = 100.
  EXPECT_EQ(sma->HandleReclaimDemand(100), 100u);
  EXPECT_EQ(sma->budget_pages(), 0u);
  EXPECT_EQ(sma->committed_pages(), committed_before - 10);
  EXPECT_EQ(sma->GetStats().reclaim_callbacks, 0u) << "no SDS disturbed";
}

TEST(SmaTest, ReclaimTier1OldestFirstWithCallback) {
  SmaOptions o = SmallOptions(1024, /*budget=*/20);
  o.heap_retain_empty_pages = 0;
  std::vector<void*> dropped;
  ContextOptions co;
  co.name = "cache";
  co.mode = ReclaimMode::kOldestFirst;
  co.callback = [&dropped](void* p, size_t) { dropped.push_back(p); };

  auto sma = MakeSma(o);
  auto ctx = sma->CreateContext(co);
  ASSERT_TRUE(ctx.ok());

  std::vector<void*> ptrs;
  for (int i = 0; i < 80; ++i) {  // exactly 20 pages of 1 KiB slots
    ptrs.push_back(sma->SoftMalloc(*ctx, 1024));
    ASSERT_NE(ptrs.back(), nullptr);
  }
  // No slack, no pool: a demand for 5 pages must drop the 20 oldest allocs.
  EXPECT_EQ(sma->HandleReclaimDemand(5), 5u);
  ASSERT_EQ(dropped.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(dropped[i], ptrs[i]) << "oldest-first order violated at " << i;
  }
  EXPECT_EQ(sma->budget_pages(), 15u);
  const auto cs = sma->GetContextStats(*ctx);
  ASSERT_TRUE(cs.ok());
  EXPECT_EQ(cs->reclaimed_allocations, 20u);
  EXPECT_EQ(cs->live_allocations, 60u);
  // The 60 surviving allocations must be intact and freeable.
  for (int i = 20; i < 80; ++i) {
    sma->SoftFree(ptrs[i]);
  }
}

TEST(SmaTest, ReclaimHonorsPriorityOrder) {
  SmaOptions o = SmallOptions(1024, /*budget=*/8);
  o.heap_retain_empty_pages = 0;
  auto sma = MakeSma(o);

  int low_drops = 0;
  int high_drops = 0;
  ContextOptions low;
  low.name = "low";
  low.priority = 1;
  low.callback = [&low_drops](void*, size_t) { ++low_drops; };
  ContextOptions high;
  high.name = "high";
  high.priority = 10;
  high.callback = [&high_drops](void*, size_t) { ++high_drops; };
  auto lo = sma->CreateContext(low);
  auto hi = sma->CreateContext(high);
  ASSERT_TRUE(lo.ok() && hi.ok());

  for (int i = 0; i < 16; ++i) {  // 4 pages each
    ASSERT_NE(sma->SoftMalloc(*lo, 1024), nullptr);
    ASSERT_NE(sma->SoftMalloc(*hi, 1024), nullptr);
  }
  // Demand 2 pages: only the low-priority context should be disturbed.
  EXPECT_EQ(sma->HandleReclaimDemand(2), 2u);
  EXPECT_EQ(low_drops, 8);
  EXPECT_EQ(high_drops, 0);

  // Demand 4 more: low has 2 pages left, then high gives 2.
  EXPECT_EQ(sma->HandleReclaimDemand(4), 4u);
  EXPECT_EQ(low_drops, 16);
  EXPECT_EQ(high_drops, 8);
}

TEST(SmaTest, ReclaimCustomProtocol) {
  SmaOptions o = SmallOptions(1024, /*budget=*/10);
  o.heap_retain_empty_pages = 0;
  auto sma = MakeSma(o);
  ContextOptions co;
  co.name = "array";
  co.mode = ReclaimMode::kCustom;
  auto ctx = sma->CreateContext(co);
  ASSERT_TRUE(ctx.ok());

  // A SoftArray-style SDS: one block, gives up everything when asked.
  void* block = sma->SoftMalloc(*ctx, 8 * kPageSize);
  ASSERT_NE(block, nullptr);
  bool reclaimed = false;
  ASSERT_TRUE(sma
                  ->SetCustomReclaim(*ctx,
                                     [&](size_t) -> size_t {
                                       if (reclaimed) {
                                         return 0;
                                       }
                                       reclaimed = true;
                                       sma->SoftFree(block);
                                       return 8 * kPageSize;
                                     })
                  .ok());

  EXPECT_EQ(sma->HandleReclaimDemand(8), 8u);
  EXPECT_TRUE(reclaimed);
  EXPECT_EQ(sma->budget_pages(), 2u);
  EXPECT_EQ(sma->GetStats().live_allocations, 0u);
}

TEST(SmaTest, ReclaimModeNoneOnlyGivesEmptyPages) {
  SmaOptions o = SmallOptions(1024, /*budget=*/10);
  o.heap_retain_empty_pages = 0;
  auto sma = MakeSma(o);
  ContextOptions co;
  co.name = "pinned";
  co.mode = ReclaimMode::kNone;
  auto ctx = sma->CreateContext(co);
  ASSERT_TRUE(ctx.ok());
  std::vector<void*> ptrs;
  for (int i = 0; i < 40; ++i) {  // 10 pages
    ptrs.push_back(sma->SoftMalloc(*ctx, 1024));
    ASSERT_NE(ptrs.back(), nullptr);
  }
  // Live allocations in a kNone context are untouchable.
  EXPECT_EQ(sma->HandleReclaimDemand(5), 0u);
  EXPECT_EQ(sma->GetStats().live_allocations, 40u);
  for (void* p : ptrs) {
    sma->SoftFree(p);
  }
}

TEST(SmaTest, ReclaimShortfallIsReported) {
  SmaOptions o = SmallOptions(1024, /*budget=*/4);
  o.heap_retain_empty_pages = 0;
  auto sma = MakeSma(o);
  std::vector<void*> ptrs;
  for (int i = 0; i < 8; ++i) {  // 2 pages
    ptrs.push_back(sma->SoftMalloc(1024));
  }
  // Slack = 2, reclaimable = 2 -> demand of 10 yields only 4.
  EXPECT_EQ(sma->HandleReclaimDemand(10), 4u);
  EXPECT_EQ(sma->budget_pages(), 0u);
}

TEST(SmaTest, ReclaimedMemoryIsReusableByLaterAllocations) {
  SmaOptions o = SmallOptions(64, /*budget=*/16);
  o.heap_retain_empty_pages = 0;
  auto sma = MakeSma(o);
  for (int i = 0; i < 64; ++i) {  // fill the 16-page budget
    ASSERT_NE(sma->SoftMalloc(1024), nullptr);
  }
  EXPECT_EQ(sma->HandleReclaimDemand(8), 8u);  // drops 32 oldest
  // Budget is now 8 and committed 8: fresh allocs must fail...
  EXPECT_EQ(sma->SoftMalloc(1024), nullptr);
  // ...until a grant raises the budget again, and the previously
  // decommitted virtual range gets re-backed.
  // (Simulated by constructing with a fresh grant via HandleReclaimDemand's
  // inverse: we just verify freed slots within committed pages reuse.)
  const SmaStats s = sma->GetStats();
  EXPECT_EQ(s.committed_pages, 8u);
  EXPECT_EQ(s.live_allocations, 32u);
}

TEST(SmaTest, SelfReclaimMakesRoomWhenDaemonDenies) {
  SmaOptions o = SmallOptions(1024, /*budget=*/8);
  o.heap_retain_empty_pages = 0;
  o.allow_self_reclaim = true;
  auto sma = MakeSma(o);

  ContextOptions low;
  low.name = "victim";
  low.priority = 0;
  low.mode = ReclaimMode::kOldestFirst;
  auto victim = sma->CreateContext(low);
  ASSERT_TRUE(victim.ok());
  ContextOptions high;
  high.name = "needy";
  high.priority = 5;
  auto needy = sma->CreateContext(high);
  ASSERT_TRUE(needy.ok());

  for (int i = 0; i < 32; ++i) {  // victim consumes the whole 8-page budget
    ASSERT_NE(sma->SoftMalloc(*victim, 1024), nullptr);
  }
  // No daemon: request denied; self-reclaim must revoke victim memory.
  void* p = sma->SoftMalloc(*needy, 1024);
  ASSERT_NE(p, nullptr);
  EXPECT_GE(sma->GetStats().self_reclaims, 1u);
  const auto vs = sma->GetContextStats(*victim);
  ASSERT_TRUE(vs.ok());
  EXPECT_GT(vs->reclaimed_allocations, 0u);
  EXPECT_LE(sma->committed_pages(), 8u) << "budget still respected";
}

TEST(SmaTest, TrimAndReleaseBudgetReturnsSlack) {
  FixedCapacityChannel channel(0);
  SmaOptions o = SmallOptions(1024, /*budget=*/32);
  o.heap_retain_empty_pages = 0;
  auto r = SoftMemoryAllocator::Create(o, &channel);
  ASSERT_TRUE(r.ok());
  auto sma = std::move(r).value();
  std::vector<void*> ptrs;
  for (int i = 0; i < 16; ++i) {  // 4 pages
    ptrs.push_back(sma->SoftMalloc(1024));
  }
  for (void* p : ptrs) {
    sma->SoftFree(p);
  }
  const size_t given = sma->TrimAndReleaseBudget();
  EXPECT_EQ(given, 32u);  // 4 pooled + 28 slack
  EXPECT_EQ(sma->budget_pages(), 0u);
  EXPECT_EQ(channel.remaining(), 32u);
}

TEST(SmaTest, UsageReportedToChannel) {
  FixedCapacityChannel channel(100);
  SmaOptions o = SmallOptions(1024, 4);
  auto r = SoftMemoryAllocator::Create(o, &channel);
  ASSERT_TRUE(r.ok());
  auto sma = std::move(r).value();
  sma->ReportTraditionalUsage(123456);
  EXPECT_EQ(channel.last_traditional_bytes(), 123456u);
}

// ---- Property sweep: random workloads with reclamation ----------------------------

struct StressParams {
  uint64_t seed;
  size_t max_alloc;
};

class SmaStressTest : public ::testing::TestWithParam<StressParams> {};

TEST_P(SmaStressTest, RandomOpsWithPeriodicReclaimKeepInvariants) {
  const StressParams param = GetParam();
  SmaOptions o = SmallOptions(4096, 512);
  o.heap_retain_empty_pages = 2;
  auto sma = MakeSma(o);

  ContextOptions co;
  co.name = "stress";
  co.mode = ReclaimMode::kOldestFirst;
  std::set<void*> dropped;
  co.callback = [&dropped](void* p, size_t) { dropped.insert(p); };
  auto ctx = sma->CreateContext(co);
  ASSERT_TRUE(ctx.ok());

  Rng rng(param.seed);
  std::set<void*> live;
  for (int step = 0; step < 20000; ++step) {
    const uint64_t op = rng.NextBounded(100);
    // Remove anything the reclaimer dropped from our live set.
    if (!dropped.empty()) {
      for (void* p : dropped) {
        live.erase(p);
      }
      dropped.clear();
    }
    if (op < 60) {
      void* p = sma->SoftMalloc(*ctx, 1 + rng.NextBounded(param.max_alloc));
      if (p != nullptr) {
        ASSERT_TRUE(live.insert(p).second)
            << "allocator returned a live pointer twice";
      }
    } else if (op < 90 && !live.empty()) {
      auto it = live.begin();
      std::advance(it, rng.NextBounded(live.size()));
      sma->SoftFree(*it);
      live.erase(it);
    } else {
      sma->HandleReclaimDemand(1 + rng.NextBounded(8));
      for (void* p : dropped) {
        live.erase(p);
      }
      dropped.clear();
    }
    if (step % 1000 == 0) {
      const SmaStats s = sma->GetStats();
      ASSERT_EQ(s.live_allocations, live.size());
      ASSERT_LE(s.committed_pages, s.budget_pages);
      ASSERT_EQ(s.committed_pages, s.pooled_pages + s.in_use_pages);
    }
  }
  // Cleanup must account for everything.
  for (void* p : live) {
    sma->SoftFree(p);
  }
  EXPECT_EQ(sma->GetStats().live_allocations, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, SmaStressTest,
    ::testing::Values(StressParams{1, 256}, StressParams{2, 2048},
                      StressParams{3, 16384}, StressParams{4, 64},
                      StressParams{5, 8192}),
    [](const auto& info) {
      return "seed" + std::to_string(info.param.seed) + "max" +
             std::to_string(info.param.max_alloc);
    });

}  // namespace
}  // namespace softmem
