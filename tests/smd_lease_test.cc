// Lease-expiry edge cases for the SMD control plane, driven entirely by an
// injected SimClock (expiry is a pure function of Advance()/Set(), never of
// wall time) and the deterministic failpoint registry. The multi-process
// proof lives in crash_recovery_test; these pin down the corners that are
// awkward to hit through real sockets: re-entrant expiry during an in-flight
// reclamation, reattach racing expiry, duplicate reattaches, stale-session
// deregistration, and clock skew.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/common/clock.h"
#include "src/smd/soft_memory_daemon.h"
#include "src/testing/failpoint.h"

namespace softmem {
namespace {

constexpr Nanos kTtl = 100 * kNanosPerMilli;

SmdOptions LeaseOptions(const Clock* clock) {
  SmdOptions o;
  o.capacity_pages = 256;
  o.initial_grant_pages = 0;
  o.over_reclaim_factor = 0.0;
  o.lease_ttl_ns = kTtl;
  o.clock = clock;
  return o;
}

class StubSink : public ReclaimSink {
 public:
  explicit StubSink(size_t give = 0) : give_(give) {}
  size_t DemandReclaim(size_t pages) override {
    ++demands_;
    return give_ < pages ? give_ : pages;
  }
  size_t demands() const { return demands_; }

 private:
  size_t give_;
  size_t demands_ = 0;
};

TEST(SmdLease, SilentProcessExpiresAfterTtlAndBudgetReturns) {
  SimClock clock;
  SoftMemoryDaemon d(LeaseOptions(&clock));
  StubSink sink;
  auto id = d.RegisterProcess("quiet", &sink);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(d.HandleBudgetRequest(*id, 64).ok());
  EXPECT_EQ(d.free_pages(), 256u - 64u);

  // One nanosecond short of the strict `age > ttl` bound: still alive.
  clock.Advance(kTtl);
  EXPECT_EQ(d.ExpireLeasesTick(), 0u);

  clock.Advance(1);
  EXPECT_EQ(d.ExpireLeasesTick(), 1u);
  EXPECT_EQ(d.free_pages(), 256u);
  EXPECT_TRUE(d.GetStats().processes.empty());
  EXPECT_EQ(d.GetStats().lease_expirations, 1u);
  EXPECT_EQ(d.ExpireLeasesTick(), 0u);  // idempotent
}

TEST(SmdLease, AnyMessageRefreshesTheLease) {
  SimClock clock;
  SoftMemoryDaemon d(LeaseOptions(&clock));
  auto id = d.RegisterProcess("chatty", nullptr);
  ASSERT_TRUE(id.ok());

  // Keep talking at 80ms intervals — each handler refreshes last_seen, so
  // total elapsed time far beyond the TTL never expires us.
  for (int i = 0; i < 5; ++i) {
    clock.Advance(80 * kNanosPerMilli);
    ASSERT_TRUE(d.HandleUsageReport(*id, 10, 1 << 20).ok());
    EXPECT_EQ(d.ExpireLeasesTick(), 0u);
  }
  EXPECT_EQ(d.GetStats().processes.size(), 1u);
}

TEST(SmdLease, DeniedRequestStillRefreshesLease) {
  // A request that the daemon *denies* (forced via the failpoint registry)
  // is still proof of life — the lease refresh must happen on entry, not
  // only on the grant path.
  SimClock clock;
  SoftMemoryDaemon d(LeaseOptions(&clock));
  auto id = d.RegisterProcess("denied", nullptr);
  ASSERT_TRUE(id.ok());

  fail::FailSpec spec;
  spec.code = StatusCode::kDenied;
  fail::ScopedFailpoint fp("smd.grant.deny", spec);
  clock.Advance(80 * kNanosPerMilli);
  EXPECT_FALSE(d.HandleBudgetRequest(*id, 16).ok());
  clock.Advance(80 * kNanosPerMilli);  // 160ms since register, 80 since deny
  EXPECT_EQ(d.ExpireLeasesTick(), 0u);
  EXPECT_EQ(d.GetStats().processes.size(), 1u);
}

TEST(SmdLease, InFlightReclaimDemandSparesTheTarget) {
  // The nasty interleaving: a holder's heartbeat is delayed past the TTL
  // *while* the daemon is mid-DemandReclaim against it (slow reclamation).
  // An expiry tick running concurrently (here: re-entrantly from inside the
  // sink, which the DaemonLock's owner check permits) must spare the target
  // — it is demonstrably alive, and reaping it would corrupt the pass's
  // bookkeeping.
  SimClock clock;
  SoftMemoryDaemon d(LeaseOptions(&clock));

  struct ExpiringSink : ReclaimSink {
    SoftMemoryDaemon* d = nullptr;
    SimClock* clock = nullptr;
    size_t reaped_during_demand = 0;
    size_t DemandReclaim(size_t pages) override {
      clock->Advance(kTtl + kNanosPerMilli);  // the delayed heartbeat
      reaped_during_demand = d->ExpireLeasesTick();
      return pages;
    }
  };
  ExpiringSink holder_sink;
  holder_sink.d = &d;
  holder_sink.clock = &clock;

  auto holder = d.RegisterProcess("holder", &holder_sink);
  ASSERT_TRUE(holder.ok());
  ASSERT_TRUE(d.HandleBudgetRequest(*holder, 200).ok());
  ASSERT_TRUE(d.HandleUsageReport(*holder, 200, 0).ok());

  auto asker = d.RegisterProcess("asker", nullptr);
  ASSERT_TRUE(asker.ok());

  // 200 of 256 assigned: this request forces reclamation from the holder.
  // The re-entrant tick fires after the clock jumped past every TTL. The
  // holder is mid-demand (spared); the *asker* aged out — its lease was
  // refreshed on entry to HandleBudgetRequest, before the jump — so it is
  // reaped out from under its own in-flight request, which must then come
  // back NotFound rather than granting budget to a ghost.
  auto got = d.HandleBudgetRequest(*asker, 100);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kNotFound) << got.status();

  EXPECT_EQ(holder_sink.reaped_during_demand, 1u);
  const SmdStats stats = d.GetStats();
  ASSERT_EQ(stats.processes.size(), 1u);
  EXPECT_EQ(stats.processes[0].name, "holder");
  // The reclaimed pages went to the free pool; the vanished asker's grant
  // was never applied, so nothing leaked: holder 156 + free 100 = 256.
  auto holder_budget = d.GetBudget(*holder);
  ASSERT_TRUE(holder_budget.ok());
  EXPECT_EQ(*holder_budget, 156u);
  EXPECT_EQ(d.free_pages(), 100u);
  // The demand also counts as contact: the holder's lease was refreshed
  // when the pass completed, so it survives the next tick too.
  EXPECT_EQ(d.ExpireLeasesTick(), 0u);
}

TEST(SmdLease, ReattachBeforeExpiryAdoptsLiveEntry) {
  // Reattach racing expiry, reattach-first ordering: the entry still exists,
  // so the daemon ledger is authoritative — budget kept, claim ignored,
  // lease refreshed, sink replaced.
  SimClock clock;
  SoftMemoryDaemon d(LeaseOptions(&clock));
  StubSink old_sink, new_sink;
  auto id = d.RegisterProcess("racer", &old_sink);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(d.HandleBudgetRequest(*id, 64).ok());

  clock.Advance(kTtl - kNanosPerMilli);  // aged but not expired
  auto re = d.ReattachProcess("racer", *id, /*claimed_budget_pages=*/999,
                              &new_sink);
  ASSERT_TRUE(re.ok());
  EXPECT_EQ(*re, *id);
  auto budget = d.GetBudget(*id);
  ASSERT_TRUE(budget.ok());
  EXPECT_EQ(*budget, 64u) << "adoption must keep the ledger, not the claim";
  EXPECT_EQ(d.GetStats().reattaches, 1u);

  // The reattach refreshed the lease: another near-TTL advance is survived.
  clock.Advance(kTtl - kNanosPerMilli);
  EXPECT_EQ(d.ExpireLeasesTick(), 0u);

  // The *old* session's teardown must not destroy the adopted entry.
  EXPECT_TRUE(d.DeregisterProcess(*id, &old_sink).ok());
  EXPECT_EQ(d.GetStats().processes.size(), 1u) << "stale dereg must be a no-op";
  EXPECT_TRUE(d.DeregisterProcess(*id, &new_sink).ok());
  EXPECT_TRUE(d.GetStats().processes.empty());
}

TEST(SmdLease, ReattachAfterExpiryRestoresClaimClampedToCapacity) {
  // Expiry-first ordering of the same race: the entry was reaped, so the
  // client's ledger is the only record — restore it, clamped to free pages.
  SimClock clock;
  SmdOptions o = LeaseOptions(&clock);
  SoftMemoryDaemon d(o);
  StubSink sink;
  auto id = d.RegisterProcess("phoenix", &sink);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(d.HandleBudgetRequest(*id, 64).ok());
  clock.Advance(kTtl + kNanosPerMilli);
  ASSERT_EQ(d.ExpireLeasesTick(), 1u);

  // Someone else takes most of the pool before the phoenix returns.
  auto other = d.RegisterProcess("other", nullptr);
  ASSERT_TRUE(other.ok());
  ASSERT_TRUE(d.HandleBudgetRequest(*other, 200).ok());

  auto re = d.ReattachProcess("phoenix", *id, /*claimed_budget_pages=*/64,
                              &sink);
  ASSERT_TRUE(re.ok());
  EXPECT_EQ(*re, *id) << "prior id is free again, so it is reused";
  auto budget = d.GetBudget(*re);
  ASSERT_TRUE(budget.ok());
  EXPECT_EQ(*budget, 56u) << "claim clamped to the 256-200 free pages";
  EXPECT_EQ(d.free_pages(), 0u);
  EXPECT_EQ(d.GetStats().reattaches, 1u);
}

TEST(SmdLease, DuplicateReattachLatestSinkWins) {
  SimClock clock;
  SoftMemoryDaemon d(LeaseOptions(&clock));
  StubSink s1(64), s2(64), s3(64);
  auto id = d.RegisterProcess("dup", &s1);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(d.HandleBudgetRequest(*id, 32).ok());

  // A flapping client reattaches twice (e.g. two reconnect attempts both
  // got through). Each adoption keeps the budget; the last sink wins.
  ASSERT_TRUE(d.ReattachProcess("dup", *id, 32, &s2).ok());
  ASSERT_TRUE(d.ReattachProcess("dup", *id, 32, &s3).ok());
  EXPECT_EQ(d.GetStats().reattaches, 2u);
  auto budget = d.GetBudget(*id);
  ASSERT_TRUE(budget.ok());
  EXPECT_EQ(*budget, 32u);
  EXPECT_EQ(d.GetStats().processes.size(), 1u);

  // Demands now route to s3 — the sessions holding s1/s2 are dead weight.
  auto asker = d.RegisterProcess("asker", nullptr);
  ASSERT_TRUE(asker.ok());
  ASSERT_TRUE(d.HandleUsageReport(*id, 32, 0).ok());
  ASSERT_TRUE(d.HandleBudgetRequest(*asker, 250).ok());
  EXPECT_EQ(s3.demands(), 1u);
  EXPECT_EQ(s1.demands(), 0u);
  EXPECT_EQ(s2.demands(), 0u);
}

TEST(SmdLease, ClockSkewForwardJumpReapsOnlyAfterTtl) {
  // An NTP-style forward jump must not reap fresher-than-TTL processes "by
  // accident" of ordering: ages are computed from the same clock reads, so
  // a jump ages everyone uniformly — and a *backward* jump must neither
  // underflow nor reap.
  SimClock clock(/*start=*/1'000'000'000);
  SoftMemoryDaemon d(LeaseOptions(&clock));
  auto id = d.RegisterProcess("skewed", nullptr);
  ASSERT_TRUE(id.ok());

  clock.Set(1'000'000'000 - 500 * kNanosPerMilli);  // backward jump
  const SmdStats stats = d.GetStats();
  ASSERT_EQ(stats.processes.size(), 1u);
  EXPECT_EQ(stats.processes[0].lease_age_ns, 0) << "no underflow on skew";
  EXPECT_EQ(d.ExpireLeasesTick(), 0u);

  // Refresh under the skewed clock, then jump forward past the TTL again:
  // now it genuinely expired.
  ASSERT_TRUE(d.HandleUsageReport(*id, 0, 0).ok());
  clock.Set(2'000'000'000);
  EXPECT_EQ(d.ExpireLeasesTick(), 1u);
}

TEST(SmdLease, TtlZeroDisablesExpiry) {
  SimClock clock;
  SmdOptions o = LeaseOptions(&clock);
  o.lease_ttl_ns = 0;
  SoftMemoryDaemon d(o);
  auto id = d.RegisterProcess("immortal", nullptr);
  ASSERT_TRUE(id.ok());
  clock.AdvanceSeconds(3600 * 24 * 365);
  EXPECT_EQ(d.ExpireLeasesTick(), 0u);
  EXPECT_EQ(d.GetStats().processes.size(), 1u);
}

}  // namespace
}  // namespace softmem
