// Tests for the SMD extensions: per-process budget caps (§1's scheduler
// soft-budget) and proactive low-watermark reclamation.

#include <gtest/gtest.h>

#include <memory>

#include "src/smd/soft_memory_daemon.h"

namespace softmem {
namespace {

class FlexSink : public ReclaimSink {
 public:
  explicit FlexSink(size_t available) : available_(available) {}
  size_t DemandReclaim(size_t pages) override {
    ++demands_;
    const size_t give = std::min(pages, available_);
    available_ -= give;
    return give;
  }
  size_t demands() const { return demands_; }

 private:
  size_t available_;
  size_t demands_ = 0;
};

TEST(SmdCapTest, DefaultCapAppliesToNewProcesses) {
  SmdOptions o;
  o.capacity_pages = 1000;
  o.default_process_cap_pages = 100;
  SoftMemoryDaemon smd(o);
  auto p = smd.RegisterProcess("capped", nullptr);
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(smd.HandleBudgetRequest(*p, 100).ok());
  // Plenty of machine capacity left, but the cap denies.
  auto over = smd.HandleBudgetRequest(*p, 1);
  EXPECT_EQ(over.status().code(), StatusCode::kDenied);
  EXPECT_EQ(smd.free_pages(), 900u);
}

TEST(SmdCapTest, PerProcessCapOverride) {
  SmdOptions o;
  o.capacity_pages = 1000;
  SoftMemoryDaemon smd(o);
  auto a = smd.RegisterProcess("a", nullptr);
  auto b = smd.RegisterProcess("b", nullptr);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(smd.SetProcessCap(*a, 50).ok());
  EXPECT_FALSE(smd.HandleBudgetRequest(*a, 51).ok());
  EXPECT_TRUE(smd.HandleBudgetRequest(*a, 50).ok());
  EXPECT_TRUE(smd.HandleBudgetRequest(*b, 500).ok()) << "b is uncapped";
  EXPECT_EQ(smd.SetProcessCap(999, 10).code(), StatusCode::kNotFound);
}

TEST(SmdCapTest, CapDenialDisturbsNobody) {
  SmdOptions o;
  o.capacity_pages = 100;
  SoftMemoryDaemon smd(o);
  FlexSink sink(100);
  auto victim = smd.RegisterProcess("victim", &sink);
  auto capped = smd.RegisterProcess("capped", nullptr);
  ASSERT_TRUE(victim.ok() && capped.ok());
  ASSERT_TRUE(smd.HandleBudgetRequest(*victim, 100).ok());
  smd.HandleUsageReport(*victim, 100, 0);
  ASSERT_TRUE(smd.SetProcessCap(*capped, 10).ok());
  // 50 pages would require reclaiming from victim, but the cap rejects the
  // request before target selection even runs.
  EXPECT_FALSE(smd.HandleBudgetRequest(*capped, 50).ok());
  EXPECT_EQ(sink.demands(), 0u);
}

TEST(SmdWatermarkTest, TickIsNoopAboveWatermark) {
  SmdOptions o;
  o.capacity_pages = 1000;
  o.low_watermark_pages = 100;
  SoftMemoryDaemon smd(o);
  EXPECT_EQ(smd.ProactiveReclaimTick(), 0u);
  EXPECT_EQ(smd.GetStats().proactive_reclaims, 0u);
}

TEST(SmdWatermarkTest, TickRestoresFreeCapacity) {
  SmdOptions o;
  o.capacity_pages = 1000;
  o.low_watermark_pages = 200;
  o.over_reclaim_factor = 0.0;
  SoftMemoryDaemon smd(o);
  FlexSink sink(1000);
  auto hog = smd.RegisterProcess("hog", &sink);
  ASSERT_TRUE(hog.ok());
  ASSERT_TRUE(smd.HandleBudgetRequest(*hog, 900).ok());
  smd.HandleUsageReport(*hog, 900, 0);
  EXPECT_EQ(smd.free_pages(), 100u);

  const size_t got = smd.ProactiveReclaimTick();
  EXPECT_EQ(got, 100u);
  EXPECT_EQ(smd.free_pages(), 200u);
  EXPECT_EQ(smd.GetStats().proactive_reclaims, 1u);
  // Next tick: already at the watermark.
  EXPECT_EQ(smd.ProactiveReclaimTick(), 0u);
}

TEST(SmdWatermarkTest, DisabledByDefault) {
  SmdOptions o;
  o.capacity_pages = 100;
  SoftMemoryDaemon smd(o);
  FlexSink sink(100);
  auto hog = smd.RegisterProcess("hog", &sink);
  ASSERT_TRUE(smd.HandleBudgetRequest(*hog, 100).ok());
  EXPECT_EQ(smd.ProactiveReclaimTick(), 0u);
  EXPECT_EQ(sink.demands(), 0u);
}

TEST(SmdWatermarkTest, ProactivePassAvoidsSynchronousReclaim) {
  // With the watermark, a later request is served from pre-reclaimed
  // capacity instead of triggering its own pass.
  SmdOptions o;
  o.capacity_pages = 1000;
  o.low_watermark_pages = 300;
  o.over_reclaim_factor = 0.0;
  SoftMemoryDaemon smd(o);
  FlexSink sink(1000);
  auto hog = smd.RegisterProcess("hog", &sink);
  auto late = smd.RegisterProcess("latecomer", nullptr);
  ASSERT_TRUE(hog.ok() && late.ok());
  ASSERT_TRUE(smd.HandleBudgetRequest(*hog, 950).ok());
  smd.HandleUsageReport(*hog, 950, 0);

  smd.ProactiveReclaimTick();
  const size_t demands_before = sink.demands();
  auto g = smd.HandleBudgetRequest(*late, 250);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(sink.demands(), demands_before)
      << "the request should ride on proactively reclaimed capacity";
}

}  // namespace
}  // namespace softmem
