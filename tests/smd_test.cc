#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/common/units.h"
#include "src/smd/soft_memory_daemon.h"
#include "src/smd/weight_policy.h"

namespace softmem {
namespace {

// ---- Weight policies -----------------------------------------------------------

TEST(WeightPolicyTest, PaperPolicyIncreasesWithTraditional) {
  PaperWeightPolicy policy;
  // The paper's A-vs-B example: same soft usage, T_A < T_B  =>  w_A < w_B.
  ProcessUsage a{.soft_pages = 100, .budget_pages = 0, .traditional_pages = 50};
  ProcessUsage b{.soft_pages = 100, .budget_pages = 0, .traditional_pages = 200};
  EXPECT_LT(policy.Weight(a), policy.Weight(b));
}

TEST(WeightPolicyTest, PaperPolicyIncreasesWithSoft) {
  PaperWeightPolicy policy;
  ProcessUsage small{.soft_pages = 10, .budget_pages = 0, .traditional_pages = 100};
  ProcessUsage big{.soft_pages = 500, .budget_pages = 0, .traditional_pages = 100};
  EXPECT_LT(policy.Weight(small), policy.Weight(big));
}

TEST(WeightPolicyTest, PaperPolicyFavorsHighSoftRatio) {
  PaperWeightPolicy policy;
  // Same total footprint (300 pages); A put more into soft memory.
  ProcessUsage a{.soft_pages = 250, .budget_pages = 0, .traditional_pages = 50};
  ProcessUsage b{.soft_pages = 50, .budget_pages = 0, .traditional_pages = 250};
  EXPECT_LT(policy.Weight(a), policy.Weight(b))
      << "opting into soft memory must lower reclamation weight";
  // The footprint-only ablation cannot tell them apart.
  FootprintWeightPolicy footprint;
  EXPECT_EQ(footprint.Weight(a), footprint.Weight(b));
  // The soft-only ablation inverts the incentive.
  SoftOnlyWeightPolicy soft_only;
  EXPECT_GT(soft_only.Weight(a), soft_only.Weight(b));
}

TEST(WeightPolicyTest, ZeroFootprintIsZeroWeight) {
  PaperWeightPolicy policy;
  ProcessUsage idle{};
  EXPECT_EQ(policy.Weight(idle), 0.0);
}

// ---- Daemon fixtures -------------------------------------------------------------

// Scriptable sink: gives up to `available` pages per demand.
class FakeSink : public ReclaimSink {
 public:
  explicit FakeSink(size_t available) : available_(available) {}

  size_t DemandReclaim(size_t pages) override {
    ++demands_;
    const size_t give = std::min(pages, available_);
    available_ -= give;
    total_given_ += give;
    return give;
  }

  size_t demands() const { return demands_; }
  size_t total_given() const { return total_given_; }
  void set_available(size_t a) { available_ = a; }

 private:
  size_t available_;
  size_t demands_ = 0;
  size_t total_given_ = 0;
};

SmdOptions DaemonOptions(size_t capacity = 1000) {
  SmdOptions o;
  o.capacity_pages = capacity;
  o.max_reclaim_targets = 3;
  o.over_reclaim_factor = 0.0;  // exact accounting in unit tests
  return o;
}

// ---- Admission ------------------------------------------------------------------

TEST(SmdTest, GrantsFromFreeCapacity) {
  SoftMemoryDaemon smd(DaemonOptions(100));
  auto p = smd.RegisterProcess("a", nullptr);
  ASSERT_TRUE(p.ok());
  auto g = smd.HandleBudgetRequest(*p, 60);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(*g, 60u);
  EXPECT_EQ(smd.free_pages(), 40u);
}

TEST(SmdTest, UnknownProcessRejected) {
  SoftMemoryDaemon smd(DaemonOptions());
  EXPECT_EQ(smd.HandleBudgetRequest(999, 10).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(smd.DeregisterProcess(999).code(), StatusCode::kNotFound);
}

TEST(SmdTest, DeniesWhenNothingReclaimable) {
  SoftMemoryDaemon smd(DaemonOptions(100));
  auto a = smd.RegisterProcess("a", nullptr);
  auto b = smd.RegisterProcess("b", nullptr);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(smd.HandleBudgetRequest(*a, 100).ok());
  // b wants 50 but a has no sink: denial, and a keeps its budget.
  auto g = smd.HandleBudgetRequest(*b, 50);
  EXPECT_EQ(g.status().code(), StatusCode::kDenied);
  const SmdStats s = smd.GetStats();
  EXPECT_EQ(s.denied_requests, 1u);
  EXPECT_EQ(s.assigned_pages, 100u);
}

TEST(SmdTest, NoPartialGrants) {
  SoftMemoryDaemon smd(DaemonOptions(100));
  FakeSink sink(/*available=*/10);
  auto a = smd.RegisterProcess("a", &sink);
  auto b = smd.RegisterProcess("b", nullptr);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(smd.HandleBudgetRequest(*a, 100).ok());
  smd.HandleUsageReport(*a, 100, 0);
  // b needs 50; a can only give 10: the request must be denied outright,
  // not partially granted (§3.3).
  auto g = smd.HandleBudgetRequest(*b, 50);
  EXPECT_EQ(g.status().code(), StatusCode::kDenied);
  // The 10 reclaimed pages do return to the free pool for later requests.
  EXPECT_EQ(smd.free_pages(), 10u);
  auto small = smd.HandleBudgetRequest(*b, 10);
  EXPECT_TRUE(small.ok());
}

TEST(SmdTest, ReleaseReturnsBudget) {
  SoftMemoryDaemon smd(DaemonOptions(100));
  auto p = smd.RegisterProcess("a", nullptr);
  ASSERT_TRUE(p.ok());
  ASSERT_TRUE(smd.HandleBudgetRequest(*p, 80).ok());
  ASSERT_TRUE(smd.HandleBudgetRelease(*p, 30).ok());
  EXPECT_EQ(smd.free_pages(), 50u);
  // Releasing more than held is clamped.
  ASSERT_TRUE(smd.HandleBudgetRelease(*p, 1000).ok());
  EXPECT_EQ(smd.free_pages(), 100u);
}

TEST(SmdTest, DeregisterFreesBudget) {
  SoftMemoryDaemon smd(DaemonOptions(100));
  auto p = smd.RegisterProcess("a", nullptr);
  ASSERT_TRUE(p.ok());
  ASSERT_TRUE(smd.HandleBudgetRequest(*p, 70).ok());
  ASSERT_TRUE(smd.DeregisterProcess(*p).ok());
  EXPECT_EQ(smd.free_pages(), 100u);
}

TEST(SmdTest, InitialGrantRespectsCapacity) {
  SmdOptions o = DaemonOptions(10);
  o.initial_grant_pages = 8;
  SoftMemoryDaemon smd(o);
  auto a = smd.RegisterProcess("a", nullptr);
  auto b = smd.RegisterProcess("b", nullptr);
  ASSERT_TRUE(a.ok() && b.ok());
  const SmdStats s = smd.GetStats();
  EXPECT_EQ(s.processes[0].budget_pages, 8u);
  EXPECT_EQ(s.processes[1].budget_pages, 2u) << "clamped to remaining capacity";
}

// ---- Reclamation target selection ---------------------------------------------

TEST(SmdTest, ReclaimsFromHighestWeightFirst) {
  SoftMemoryDaemon smd(DaemonOptions(200));
  FakeSink heavy_sink(100);
  FakeSink light_sink(100);
  auto heavy = smd.RegisterProcess("heavy", &heavy_sink);
  auto light = smd.RegisterProcess("light", &light_sink);
  auto req = smd.RegisterProcess("requester", nullptr);
  ASSERT_TRUE(heavy.ok() && light.ok() && req.ok());
  ASSERT_TRUE(smd.HandleBudgetRequest(*heavy, 100).ok());
  ASSERT_TRUE(smd.HandleBudgetRequest(*light, 100).ok());
  // heavy has a much larger traditional footprint => higher weight.
  smd.HandleUsageReport(*heavy, 100, 400 * kPageSize);
  smd.HandleUsageReport(*light, 100, 10 * kPageSize);

  auto g = smd.HandleBudgetRequest(*req, 50);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(heavy_sink.total_given(), 50u);
  EXPECT_EQ(light_sink.total_given(), 0u);
}

TEST(SmdTest, PrefersFlexibleTargetsEvenAtLowerWeight) {
  SoftMemoryDaemon smd(DaemonOptions(200));
  FakeSink tight_sink(100);
  FakeSink flexible_sink(100);
  auto tight = smd.RegisterProcess("tight", &tight_sink);
  auto flexible = smd.RegisterProcess("flexible", &flexible_sink);
  auto req = smd.RegisterProcess("requester", nullptr);
  ASSERT_TRUE(tight.ok() && flexible.ok() && req.ok());
  ASSERT_TRUE(smd.HandleBudgetRequest(*tight, 100).ok());
  ASSERT_TRUE(smd.HandleBudgetRequest(*flexible, 100).ok());
  // tight uses every page of its budget (all allocated to SDSs) and has the
  // higher weight; flexible sits on 60 pages of slack.
  smd.HandleUsageReport(*tight, 100, 500 * kPageSize);
  smd.HandleUsageReport(*flexible, 40, 100 * kPageSize);

  auto g = smd.HandleBudgetRequest(*req, 30);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(flexible_sink.total_given(), 30u)
      << "the flexible process gives its slack without disturbance";
  EXPECT_EQ(tight_sink.total_given(), 0u);
}

TEST(SmdTest, FallsBackToTightTargetWhenFlexibleInsufficient) {
  SoftMemoryDaemon smd(DaemonOptions(200));
  FakeSink tight_sink(100);
  FakeSink flexible_sink(100);
  auto tight = smd.RegisterProcess("tight", &tight_sink);
  auto flexible = smd.RegisterProcess("flexible", &flexible_sink);
  auto req = smd.RegisterProcess("requester", nullptr);
  ASSERT_TRUE(smd.HandleBudgetRequest(*tight, 150).ok());
  ASSERT_TRUE(smd.HandleBudgetRequest(*flexible, 50).ok());
  smd.HandleUsageReport(*tight, 150, 500 * kPageSize);
  smd.HandleUsageReport(*flexible, 40, 100 * kPageSize);

  auto g = smd.HandleBudgetRequest(*req, 80);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(flexible_sink.total_given(), 50u) << "flexible drained first";
  EXPECT_EQ(tight_sink.total_given(), 30u) << "tight covers the remainder";
}

TEST(SmdTest, TargetCapLimitsDisturbance) {
  SmdOptions o = DaemonOptions(1000);
  o.max_reclaim_targets = 2;
  SoftMemoryDaemon smd(o);
  std::vector<std::unique_ptr<FakeSink>> sinks;
  std::vector<ProcessId> pids;
  for (int i = 0; i < 5; ++i) {
    sinks.push_back(std::make_unique<FakeSink>(10));
    auto p = smd.RegisterProcess("p" + std::to_string(i), sinks.back().get());
    ASSERT_TRUE(p.ok());
    ASSERT_TRUE(smd.HandleBudgetRequest(*p, 10).ok());
    smd.HandleUsageReport(*p, 10, 10 * kPageSize);
    pids.push_back(*p);
  }
  auto req = smd.RegisterProcess("requester", nullptr);
  ASSERT_TRUE(req.ok());
  // Needs 50 from five 10-page victims, but only 2 may be disturbed -> deny.
  auto g = smd.HandleBudgetRequest(*req, 1000);
  EXPECT_EQ(g.status().code(), StatusCode::kDenied);
  size_t disturbed = 0;
  for (const auto& s : sinks) {
    if (s->demands() > 0) {
      ++disturbed;
    }
  }
  EXPECT_LE(disturbed, 2u);
}

TEST(SmdTest, RequesterNeverSelfReclaimed) {
  SoftMemoryDaemon smd(DaemonOptions(100));
  FakeSink sink(100);
  auto p = smd.RegisterProcess("only", &sink);
  ASSERT_TRUE(p.ok());
  ASSERT_TRUE(smd.HandleBudgetRequest(*p, 100).ok());
  smd.HandleUsageReport(*p, 100, 0);
  // The only reclaimable process is the requester itself: deny.
  EXPECT_FALSE(smd.HandleBudgetRequest(*p, 10).ok());
  EXPECT_EQ(sink.demands(), 0u);
}

TEST(SmdTest, OverReclaimFactorFreesExtra) {
  SmdOptions o = DaemonOptions(100);
  o.over_reclaim_factor = 1.0;  // take 100% extra
  SoftMemoryDaemon smd(o);
  FakeSink sink(100);
  auto victim = smd.RegisterProcess("victim", &sink);
  auto req = smd.RegisterProcess("req", nullptr);
  ASSERT_TRUE(victim.ok() && req.ok());
  ASSERT_TRUE(smd.HandleBudgetRequest(*victim, 100).ok());
  smd.HandleUsageReport(*victim, 100, 0);

  ASSERT_TRUE(smd.HandleBudgetRequest(*req, 10).ok());
  // Needed 10, over-reclaimed 20: 10 granted, 10 still free. The next
  // request of 10 is served without another reclamation pass.
  EXPECT_EQ(smd.free_pages(), 10u);
  const size_t demands_before = sink.demands();
  ASSERT_TRUE(smd.HandleBudgetRequest(*req, 10).ok());
  EXPECT_EQ(sink.demands(), demands_before) << "amortization must kick in";
}

TEST(SmdTest, StatsReflectLedger) {
  SoftMemoryDaemon smd(DaemonOptions(500));
  FakeSink sink(50);
  auto a = smd.RegisterProcess("a", &sink);
  auto b = smd.RegisterProcess("b", nullptr);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(smd.HandleBudgetRequest(*a, 400).ok());
  smd.HandleUsageReport(*a, 300, 100 * kPageSize);
  ASSERT_TRUE(smd.HandleBudgetRequest(*b, 150).ok());  // forces reclaim of 50

  const SmdStats s = smd.GetStats();
  EXPECT_EQ(s.capacity_pages, 500u);
  EXPECT_EQ(s.assigned_pages, 350u + 150u);
  EXPECT_EQ(s.total_requests, 2u);
  EXPECT_EQ(s.granted_requests, 2u);
  EXPECT_EQ(s.reclamations, 1u);
  EXPECT_EQ(s.reclaimed_pages, 50u);
  ASSERT_EQ(s.processes.size(), 2u);
  EXPECT_EQ(s.processes[0].pages_reclaimed, 50u);
  EXPECT_EQ(s.processes[0].times_targeted, 1u);
  EXPECT_GT(s.processes[0].weight, 0.0);
}

// Parameterized sweep: whatever the capacity and request mix, the daemon's
// ledger invariants hold (budgets sum to assigned; assigned <= capacity).
class SmdPropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(SmdPropertyTest, LedgerInvariantsUnderRandomTraffic) {
  const size_t capacity = GetParam();
  SmdOptions o = DaemonOptions(capacity);
  o.over_reclaim_factor = 0.25;
  SoftMemoryDaemon smd(o);

  struct Proc {
    ProcessId id;
    std::unique_ptr<FakeSink> sink;
    size_t budget = 0;
  };
  std::vector<Proc> procs;
  for (int i = 0; i < 4; ++i) {
    auto sink = std::make_unique<FakeSink>(0);
    auto id = smd.RegisterProcess("p" + std::to_string(i), sink.get());
    ASSERT_TRUE(id.ok());
    procs.push_back(Proc{*id, std::move(sink), 0});
  }

  uint64_t x = 88172645463325252ULL;  // xorshift
  auto rnd = [&x](uint64_t bound) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return x % bound;
  };

  for (int step = 0; step < 5000; ++step) {
    Proc& p = procs[rnd(procs.size())];
    const uint64_t op = rnd(10);
    if (op < 6) {
      const size_t want = 1 + rnd(capacity / 4);
      auto g = smd.HandleBudgetRequest(p.id, want);
      if (g.ok()) {
        p.budget += *g;
      }
    } else if (op < 8 && p.budget > 0) {
      const size_t give = 1 + rnd(p.budget);
      ASSERT_TRUE(smd.HandleBudgetRelease(p.id, give).ok());
      p.budget -= give;
    } else {
      // Report usage <= budget; sink can surrender everything above half.
      const size_t used = p.budget == 0 ? 0 : rnd(p.budget + 1);
      smd.HandleUsageReport(p.id, used, rnd(1000) * kPageSize);
      p.sink->set_available(p.budget);
    }
    // Mirror daemon-initiated reclamation into our local budgets.
    const SmdStats s = smd.GetStats();
    size_t sum = 0;
    for (size_t i = 0; i < procs.size(); ++i) {
      procs[i].budget = s.processes[i].budget_pages;
      sum += s.processes[i].budget_pages;
    }
    ASSERT_EQ(sum, s.assigned_pages);
    ASSERT_LE(s.assigned_pages, s.capacity_pages);
    ASSERT_EQ(s.free_pages, s.capacity_pages - s.assigned_pages);
  }
}

INSTANTIATE_TEST_SUITE_P(Capacities, SmdPropertyTest,
                         ::testing::Values(64, 1000, 100000));

}  // namespace
}  // namespace softmem
