#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "src/sma/soft_memory_allocator.h"
#include "src/sma/soft_ptr.h"

namespace softmem {
namespace {

std::unique_ptr<SoftMemoryAllocator> MakeSma(size_t pages = 1024) {
  SmaOptions o;
  o.region_pages = pages;
  o.initial_budget_pages = pages;
  o.heap_retain_empty_pages = 0;
  o.use_mmap = false;
  auto r = SoftMemoryAllocator::Create(o);
  EXPECT_TRUE(r.ok());
  return std::move(r).value();
}

size_t DemandFromSds(SoftMemoryAllocator* sma, size_t pages) {
  const SmaStats s = sma->GetStats();
  const size_t slack = s.budget_pages > s.committed_pages
                           ? s.budget_pages - s.committed_pages
                           : 0;
  return sma->HandleReclaimDemand(slack + s.pooled_pages + pages);
}

TEST(SoftPtrTest, TracksLiveAllocation) {
  auto sma = MakeSma();
  auto* raw = static_cast<int*>(sma->SoftMalloc(sizeof(int)));
  *raw = 42;
  SoftPtr<int> ptr(sma.get(), raw);
  ASSERT_TRUE(ptr);
  EXPECT_EQ(*ptr, 42);
  EXPECT_FALSE(ptr.revoked());
}

TEST(SoftPtrTest, NulledOnExplicitFree) {
  auto sma = MakeSma();
  auto* raw = static_cast<int*>(sma->SoftMalloc(sizeof(int)));
  SoftPtr<int> a(sma.get(), raw);
  SoftPtr<int> b(sma.get(), raw);
  sma->SoftFree(raw);
  EXPECT_FALSE(a);
  EXPECT_FALSE(b);
  EXPECT_TRUE(a.revoked());
}

TEST(SoftPtrTest, NulledOnReclamation) {
  auto sma = MakeSma();
  // Fill a kOldestFirst context; track a pointer to the oldest allocation.
  std::vector<void*> raws;
  for (int i = 0; i < 64; ++i) {  // 16 pages of 1 KiB slots
    raws.push_back(sma->SoftMalloc(1024));
  }
  SoftPtr<char> oldest(sma.get(), static_cast<char*>(raws[0]));
  SoftPtr<char> newest(sma.get(), static_cast<char*>(raws.back()));

  DemandFromSds(sma.get(), 2);  // revokes the 8 oldest allocations' pages

  EXPECT_TRUE(oldest.revoked()) << "pointer into reclaimed memory must null";
  EXPECT_TRUE(newest) << "pointer to surviving allocation stays valid";
}

TEST(SoftPtrTest, NulledOnContextDestroy) {
  auto sma = MakeSma();
  ContextOptions co;
  co.name = "scratch";
  auto ctx = sma->CreateContext(co);
  ASSERT_TRUE(ctx.ok());
  auto* raw = static_cast<int*>(sma->SoftMalloc(*ctx, sizeof(int)));
  auto* other_raw = static_cast<int*>(sma->SoftMalloc(sizeof(int)));
  SoftPtr<int> in_ctx(sma.get(), raw);
  SoftPtr<int> outside(sma.get(), other_raw);
  ASSERT_TRUE(sma->DestroyContext(*ctx).ok());
  EXPECT_FALSE(in_ctx);
  EXPECT_TRUE(outside);
}

TEST(SoftPtrTest, CopyAndMoveKeepTracking) {
  auto sma = MakeSma();
  auto* raw = static_cast<int*>(sma->SoftMalloc(sizeof(int)));
  SoftPtr<int> a(sma.get(), raw);
  SoftPtr<int> copy = a;
  SoftPtr<int> moved = std::move(a);
  EXPECT_TRUE(copy);
  EXPECT_TRUE(moved);
  EXPECT_FALSE(a);  // NOLINT(bugprone-use-after-move): moved-from is null

  sma->SoftFree(raw);
  EXPECT_FALSE(copy);
  EXPECT_FALSE(moved);
}

TEST(SoftPtrTest, ResetRetargets) {
  auto sma = MakeSma();
  auto* x = static_cast<int*>(sma->SoftMalloc(sizeof(int)));
  auto* y = static_cast<int*>(sma->SoftMalloc(sizeof(int)));
  SoftPtr<int> p(sma.get(), x);
  p.reset(y);
  sma->SoftFree(x);  // no longer tracked by p
  EXPECT_TRUE(p);
  sma->SoftFree(y);
  EXPECT_FALSE(p);
}

TEST(SoftPtrTest, DestructorUnregistersCleanly) {
  auto sma = MakeSma();
  auto* raw = static_cast<int*>(sma->SoftMalloc(sizeof(int)));
  {
    SoftPtr<int> p(sma.get(), raw);
    EXPECT_TRUE(p);
  }
  // If the destructor failed to unregister, this free would write through a
  // dangling holder and crash/corrupt.
  sma->SoftFree(raw);
  EXPECT_EQ(sma->GetStats().live_allocations, 0u);
}

TEST(SoftPtrTest, ManyPointersManyAllocations) {
  auto sma = MakeSma();
  std::vector<void*> raws;
  std::vector<SoftPtr<char>> ptrs;
  for (int i = 0; i < 256; ++i) {
    raws.push_back(sma->SoftMalloc(1024));
    ptrs.emplace_back(sma.get(), static_cast<char*>(raws.back()));
  }
  DemandFromSds(sma.get(), 16);  // drops the oldest 64
  size_t revoked = 0;
  for (auto& p : ptrs) {
    if (p.revoked()) {
      ++revoked;
    }
  }
  EXPECT_EQ(revoked, 64u);
  // Every surviving pointer still points at its own allocation.
  for (size_t i = revoked; i < ptrs.size(); ++i) {
    EXPECT_EQ(ptrs[i].get(), raws[i]);
  }
}

}  // namespace
}  // namespace softmem
