#include <gtest/gtest.h>

#include <memory>

#include "src/sma/soft_memory_allocator.h"
#include "src/sma/stats_text.h"
#include "src/smd/soft_memory_daemon.h"
#include "src/smd/stats_text.h"

namespace softmem {
namespace {

TEST(StatsTextTest, SmaSummaryMentionsKeyFigures) {
  SmaOptions o;
  o.region_pages = 1024;
  o.initial_budget_pages = 256;
  o.use_mmap = false;
  auto sma_r = SoftMemoryAllocator::Create(o);
  ASSERT_TRUE(sma_r.ok());
  auto sma = std::move(sma_r).value();
  void* p = sma->SoftMalloc(1024);
  ASSERT_NE(p, nullptr);

  const std::string text = FormatSmaStats(sma->GetStats());
  EXPECT_NE(text.find("budget 1.0 MiB"), std::string::npos) << text;
  EXPECT_NE(text.find("live allocations: 1"), std::string::npos) << text;
  EXPECT_NE(text.find("1 allocs"), std::string::npos) << text;
  sma->SoftFree(p);
}

TEST(StatsTextTest, ContextLineShowsReclaims) {
  ContextStats cs;
  cs.name = "cache";
  cs.priority = 7;
  cs.owned_pages = 3;
  cs.live_allocations = 12;
  cs.allocated_bytes = 6144;
  cs.reclaimed_allocations = 5;
  cs.reclaimed_bytes = 2560;
  const std::string line = FormatContextStats(cs);
  EXPECT_NE(line.find("'cache'"), std::string::npos);
  EXPECT_NE(line.find("prio=7"), std::string::npos);
  EXPECT_NE(line.find("reclaimed 5 allocs"), std::string::npos);
}

TEST(StatsTextTest, SmdSummaryListsProcesses) {
  SmdOptions o;
  o.capacity_pages = 1024;
  SoftMemoryDaemon smd(o);
  auto a = smd.RegisterProcess("web-cache", nullptr);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(smd.HandleBudgetRequest(*a, 100).ok());
  smd.HandleUsageReport(*a, 80, 4096 * 50);

  const std::string text = FormatSmdStats(smd.GetStats());
  EXPECT_NE(text.find("capacity 4.0 MiB"), std::string::npos) << text;
  EXPECT_NE(text.find("web-cache"), std::string::npos) << text;
  EXPECT_NE(text.find("1 granted"), std::string::npos) << text;
}

}  // namespace
}  // namespace softmem
