// Tests for the telemetry layer: registry semantics, exposition-format
// goldens, histogram bucket boundaries, the reclaim journal, the HTTP
// endpoint, and end-to-end family coverage across SMA/SMD/IPC/KV. The
// concurrency suites run under TSan via scripts/check.sh tsan.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/ipc/daemon_client.h"
#include "src/ipc/daemon_server.h"
#include "src/ipc/unix_socket.h"
#include "src/kv/kv_store.h"
#include "src/sma/soft_memory_allocator.h"
#include "src/smd/soft_memory_daemon.h"
#include "src/telemetry/event_journal.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/metrics_http.h"
#include "src/testing/failpoint.h"
#include "src/testing/invariants.h"

namespace softmem {
namespace telemetry {
namespace {

// ---- Registry semantics -----------------------------------------------------

TEST(TelemetryRegistryTest, SameSeriesReturnsSamePointer) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("ops_total", "Ops.");
  Counter* b = reg.GetCounter("ops_total", "Ops.");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a, b);
  a->Inc(3);
  EXPECT_EQ(b->Value(), 3u);
  EXPECT_EQ(reg.SeriesCount(), 1u);
}

TEST(TelemetryRegistryTest, DistinctLabelsAreDistinctSeries) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("ops_total", "Ops.", {{"op", "get"}});
  Counter* b = reg.GetCounter("ops_total", "Ops.", {{"op", "set"}});
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
  EXPECT_EQ(reg.SeriesCount(), 2u);
}

TEST(TelemetryRegistryTest, KindClashReturnsNull) {
  MetricsRegistry reg;
  ASSERT_NE(reg.GetCounter("thing", "A thing."), nullptr);
  EXPECT_EQ(reg.GetGauge("thing", "A thing."), nullptr);
  EXPECT_EQ(reg.GetHistogram("thing", "A thing.", {1, 2}), nullptr);
  // The original series is unharmed.
  EXPECT_NE(reg.GetCounter("thing", "A thing."), nullptr);
  EXPECT_EQ(reg.SeriesCount(), 1u);
}

TEST(TelemetryRegistryTest, GaugeIsSigned) {
  MetricsRegistry reg;
  Gauge* g = reg.GetGauge("level", "Level.");
  g->Set(10);
  g->Add(-25);
  EXPECT_EQ(g->Value(), -15);
}

// ---- Histogram bucket boundaries --------------------------------------------

TEST(TelemetryHistogramTest, BoundsAreInclusiveUpper) {
  Histogram h({10, 100});
  h.Observe(0);    // -> le=10
  h.Observe(10);   // boundary: inclusive -> le=10
  h.Observe(11);   // -> le=100
  h.Observe(100);  // boundary -> le=100
  h.Observe(101);  // -> +Inf
  EXPECT_EQ(h.BucketCount(0), 2u);
  EXPECT_EQ(h.BucketCount(1), 2u);
  EXPECT_EQ(h.BucketCount(2), 1u);
  EXPECT_EQ(h.Count(), 5u);
  EXPECT_EQ(h.Sum(), 0u + 10 + 11 + 100 + 101);
}

TEST(TelemetryHistogramTest, EmptyBoundsMeansSingleInfBucket) {
  Histogram h({});
  h.Observe(0);
  h.Observe(1ull << 62);
  EXPECT_EQ(h.bucket_count(), 1u);
  EXPECT_EQ(h.BucketCount(0), 2u);
  EXPECT_EQ(h.Count(), 2u);
}

TEST(TelemetryHistogramTest, DefaultBoundSetsAreAscending) {
  for (const auto& bounds :
       {Histogram::LatencyBoundsNs(), Histogram::PageCountBounds()}) {
    for (size_t i = 1; i < bounds.size(); ++i) {
      EXPECT_LT(bounds[i - 1], bounds[i]);
    }
  }
}

// ---- Exposition format golden -----------------------------------------------

TEST(TelemetryExpositionTest, GoldenPrometheusOutput) {
  MetricsRegistry reg;
  reg.GetGauge("test_bytes", "Bytes held.")->Set(-5);
  reg.GetCounter("test_ops_total", "Ops executed.", {{"kind", "a"}})->Inc(2);
  reg.GetCounter("test_ops_total", "Ops executed.", {{"kind", "b"}})->Inc();
  Histogram* h = reg.GetHistogram("test_lat", "Latency.", {10, 20});
  h->Observe(5);
  h->Observe(10);
  h->Observe(11);
  h->Observe(25);

  const std::string expected =
      "# HELP test_bytes Bytes held.\n"
      "# TYPE test_bytes gauge\n"
      "test_bytes -5\n"
      "# HELP test_lat Latency.\n"
      "# TYPE test_lat histogram\n"
      "test_lat_bucket{le=\"10\"} 2\n"
      "test_lat_bucket{le=\"20\"} 3\n"
      "test_lat_bucket{le=\"+Inf\"} 4\n"
      "test_lat_sum 51\n"
      "test_lat_count 4\n"
      "# HELP test_ops_total Ops executed.\n"
      "# TYPE test_ops_total counter\n"
      "test_ops_total{kind=\"a\"} 2\n"
      "test_ops_total{kind=\"b\"} 1\n";
  EXPECT_EQ(reg.RenderPrometheus(), expected);
}

TEST(TelemetryExpositionTest, LabelValuesAreEscaped) {
  MetricsRegistry reg;
  reg.GetCounter("esc_total", "Esc.", {{"v", "a\"b\\c\nd"}})->Inc();
  const std::string text = reg.RenderPrometheus();
  EXPECT_NE(text.find("esc_total{v=\"a\\\"b\\\\c\\nd\"} 1"),
            std::string::npos)
      << text;
}

TEST(TelemetryExpositionTest, CollectorSamplesRenderLikeSeries) {
  MetricsRegistry reg;
  const uint64_t id = reg.AddCollector([](std::vector<Sample>* out) {
    Sample s;
    s.name = "collected_pages";
    s.help = "From a collector.";
    s.kind = MetricKind::kGauge;
    s.labels = {{"ctx", "x"}};
    s.value = 7;
    out->push_back(std::move(s));
  });
  EXPECT_NE(reg.RenderPrometheus().find("collected_pages{ctx=\"x\"} 7"),
            std::string::npos);
  reg.RemoveCollector(id);
  EXPECT_EQ(reg.RenderPrometheus().find("collected_pages"),
            std::string::npos);
}

TEST(TelemetryExpositionTest, RenderJsonContainsHistogramShape) {
  MetricsRegistry reg;
  reg.GetCounter("j_total", "J.")->Inc(4);
  Histogram* h = reg.GetHistogram("j_lat", "JL.", {10});
  h->Observe(3);
  h->Observe(30);
  const std::string json = reg.RenderJson();
  EXPECT_NE(json.find("\"j_total\": 4"), std::string::npos) << json;
  EXPECT_NE(json.find("\"j_lat\": {\"count\": 2, \"sum\": 33, \"buckets\": "
                      "{\"10\": 1, \"+Inf\": 2}}"),
            std::string::npos)
      << json;
}

// ---- Arming gate ------------------------------------------------------------

TEST(TelemetryTimerTest, UnarmedTimerNeverObserves) {
  ASSERT_FALSE(Armed());  // tests run unarmed by default
  Histogram h({1000});
  { ScopedLatencyTimer t(&h); }
  EXPECT_EQ(h.Count(), 0u);
}

TEST(TelemetryTimerTest, ArmedTimerObservesOnce) {
  Histogram h(Histogram::LatencyBoundsNs());
  SetArmed(true);
  { ScopedLatencyTimer t(&h); }
  { ScopedLatencyTimer t(nullptr); }  // null histogram stays a no-op
  SetArmed(false);
  EXPECT_EQ(h.Count(), 1u);
}

// ---- Reclaim journal --------------------------------------------------------

TEST(TelemetryJournalTest, RingEvictsOldestAndStampsSeq) {
  ReclaimJournal<ReclaimDemandTrace> journal(3);
  for (size_t i = 0; i < 5; ++i) {
    ReclaimDemandTrace t;
    t.demanded_pages = 100 + i;
    journal.Append(t);
  }
  EXPECT_EQ(journal.size(), 3u);
  EXPECT_EQ(journal.total_appended(), 5u);
  const auto snap = journal.Snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].seq, 2u);  // oldest two evicted
  EXPECT_EQ(snap[2].seq, 4u);
  EXPECT_EQ(snap[2].demanded_pages, 104u);
}

TEST(TelemetryJournalTest, JsonlRendersOneObjectPerRecord) {
  ReclaimJournal<ReclaimPassTrace> journal(8);
  ReclaimPassTrace t;
  t.need_pages = 64;
  t.quota_pages = 80;
  t.recovered_pages = 70;
  t.targets.push_back({42, "kv_server", 80, 70});
  journal.Append(t);
  const std::string jsonl = RenderJournalJsonl(journal.Snapshot());
  EXPECT_NE(jsonl.find("\"need_pages\":64"), std::string::npos) << jsonl;
  EXPECT_NE(jsonl.find("\"kv_server\""), std::string::npos) << jsonl;
  EXPECT_EQ(jsonl.find("\n"), jsonl.size() - 1);  // one line, one record
  EXPECT_FALSE(RenderJournalText(journal.Snapshot()).empty());
}

// ---- SMA integration --------------------------------------------------------

std::unique_ptr<SoftMemoryAllocator> MakeSma(MetricsRegistry* reg,
                                             const std::string& instance,
                                             size_t pages = 2048) {
  SmaOptions o;
  o.metrics = reg;
  o.metrics_instance = instance;
  o.region_pages = 16 * 1024;
  o.initial_budget_pages = pages;
  o.heap_retain_empty_pages = 0;
  auto r = SoftMemoryAllocator::Create(o);
  EXPECT_TRUE(r.ok()) << r.status();
  return std::move(r).value();
}

TEST(TelemetrySmaTest, CountersFlowIntoRegistryAndStats) {
  MetricsRegistry reg;
  auto sma = MakeSma(&reg, "t");
  void* p = sma->SoftMalloc(1024);
  ASSERT_NE(p, nullptr);
  sma->SoftFree(p);
  // Registry series and GetStats read the same atomics.
  Counter* allocs = reg.GetCounter("softmem_sma_allocs_total", "",
                                   {{"instance", "t"}});
  ASSERT_NE(allocs, nullptr);
  EXPECT_EQ(allocs->Value(), 1u);
  const SmaStats s = sma->GetStats();
  EXPECT_EQ(s.total_allocs, 1u);
  EXPECT_EQ(s.total_frees, 1u);
  EXPECT_GE(s.pages_committed, 1u);
  // Collector-backed gauges appear in the exposition.
  const std::string text = reg.RenderPrometheus();
  EXPECT_NE(text.find("softmem_sma_budget_pages{instance=\"t\"}"),
            std::string::npos)
      << text;
}

TEST(TelemetrySmaTest, ReclaimDemandAppendsJournalTrace) {
  MetricsRegistry reg;
  auto sma = MakeSma(&reg, "j");
  std::vector<void*> ptrs;
  for (int i = 0; i < 64; ++i) {
    ptrs.push_back(sma->SoftMalloc(4096));
    ASSERT_NE(ptrs.back(), nullptr);
  }
  for (void* p : ptrs) {
    sma->SoftFree(p);
  }
  const size_t got = sma->HandleReclaimDemand(32);
  EXPECT_GT(got, 0u);
  ASSERT_GE(sma->reclaim_journal().size(), 1u);
  const auto snap = sma->reclaim_journal().Snapshot();
  const auto& trace = snap.back();
  EXPECT_EQ(trace.demanded_pages, 32u);
  EXPECT_EQ(trace.produced_pages, got);
  EXPECT_GE(trace.total_ns, 0);
  // Reclaim is the slow path: its histograms record even unarmed (only
  // per-operation latency timers are gated on arming).
  Histogram* h = reg.GetHistogram("softmem_sma_reclaim_duration_ns", "",
                                  Histogram::LatencyBoundsNs(),
                                  {{"instance", "j"}});
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->Count(), 1u);
  Histogram* pages = reg.GetHistogram("softmem_sma_reclaim_pages", "",
                                      Histogram::PageCountBounds(),
                                      {{"instance", "j"}});
  ASSERT_NE(pages, nullptr);
  EXPECT_EQ(pages->Count(), 1u);
  EXPECT_EQ(pages->Sum(), got);
}

// Conservation under randomized churn with injected faults: the registry's
// alloc/free counters and the ShadowHeap must agree at every checkpoint
// (invariant I4 read through telemetry instead of GetStats).
TEST(TelemetryFaultStressTest, CounterConservationUnderFaultyChurn) {
  MetricsRegistry reg;
  auto sma = MakeSma(&reg, "stress", /*pages=*/512);
  Counter* allocs = reg.GetCounter("softmem_sma_allocs_total", "",
                                   {{"instance", "stress"}});
  Counter* frees = reg.GetCounter("softmem_sma_frees_total", "",
                                  {{"instance", "stress"}});
  ASSERT_NE(allocs, nullptr);
  ASSERT_NE(frees, nullptr);

  fail::FailSpec spec;
  spec.probability = 0.2;
  spec.code = StatusCode::kResourceExhausted;
  fail::ScopedFailpoint fp("sma.budget.request", spec);
  fail::Registry().Seed(fail::SeedFromEnv(0x7E1E));

  testing::ShadowHeap shadow;
  Rng rng(0x7E1E);
  std::vector<void*> live;
  for (int step = 0; step < 4000; ++step) {
    if (live.size() < 400 && (live.empty() || rng.NextBool(0.6))) {
      const size_t size = 16 + rng.NextBounded(6000);
      void* p = sma->SoftMalloc(size);
      if (p != nullptr) {  // budget failpoint may legitimately starve us
        ASSERT_TRUE(shadow.OnAlloc(p, size, 0, 0).ok());
        live.push_back(p);
      }
    } else {
      const size_t pick = rng.NextBounded(live.size());
      sma->SoftFree(live[pick]);
      ASSERT_TRUE(shadow.OnFree(live[pick]).ok());
      live[pick] = live.back();
      live.pop_back();
    }
    if (step % 500 == 0) {
      const Status inv = testing::CheckSmaInvariants(sma.get(), shadow);
      ASSERT_TRUE(inv.ok()) << "step " << step << ": " << inv;
      ASSERT_EQ(allocs->Value() - frees->Value(), shadow.live_count())
          << "step " << step;
    }
  }
  sma->GetStats();  // drains thread caches so the final counts are exact
  EXPECT_EQ(allocs->Value() - frees->Value(), live.size());
  for (void* p : live) {
    sma->SoftFree(p);
  }
  EXPECT_EQ(allocs->Value(), frees->Value());
}

// ---- Concurrency (runs under TSan via check.sh) -----------------------------

TEST(TelemetryConcurrencyTest, ConcurrentRegistrationConvergesPerSeries) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kIncsPerThread = 2000;
  constexpr int kSeries = 17;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, t] {
      for (int i = 0; i < kIncsPerThread; ++i) {
        const std::string series = std::to_string((t + i) % kSeries);
        Counter* c = reg.GetCounter("conc_total", "Conc.",
                                    {{"series", series}});
        ASSERT_NE(c, nullptr);
        c->Inc();
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(reg.SeriesCount(), static_cast<size_t>(kSeries));
  uint64_t total = 0;
  for (int s = 0; s < kSeries; ++s) {
    total += reg.GetCounter("conc_total", "Conc.",
                            {{"series", std::to_string(s)}})
                 ->Value();
  }
  EXPECT_EQ(total, static_cast<uint64_t>(kThreads) * kIncsPerThread);
}

TEST(TelemetryConcurrencyTest, RenderRacesUpdatesSafely) {
  MetricsRegistry reg;
  std::atomic<bool> stop{false};
  std::thread renderer([&] {
    while (!stop.load()) {
      reg.RenderPrometheus();
      reg.RenderJson();
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&reg, t] {
      Histogram* h = reg.GetHistogram("rr_lat", "RR.", {100, 10000});
      for (int i = 0; i < 5000; ++i) {
        reg.GetCounter("rr_total", "RR.", {{"t", std::to_string(t)}})->Inc();
        h->Observe(static_cast<uint64_t>(i));
      }
    });
  }
  for (auto& th : writers) {
    th.join();
  }
  stop.store(true);
  renderer.join();
  Histogram* h = reg.GetHistogram("rr_lat", "RR.", {100, 10000});
  EXPECT_EQ(h->Count(), 4u * 5000u);
}

TEST(TelemetryConcurrencyTest, CollectorsAddRemoveDuringRender) {
  MetricsRegistry reg;
  std::atomic<bool> stop{false};
  std::thread renderer([&] {
    while (!stop.load()) {
      reg.RenderPrometheus();
    }
  });
  for (int i = 0; i < 200; ++i) {
    const uint64_t id = reg.AddCollector([](std::vector<Sample>* out) {
      Sample s;
      s.name = "flicker";
      s.help = "F.";
      s.value = 1;
      out->push_back(std::move(s));
    });
    reg.RemoveCollector(id);
  }
  stop.store(true);
  renderer.join();
}

// ---- HTTP endpoint ----------------------------------------------------------

std::string HttpGet(uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string req = "GET " + path + " HTTP/1.0\r\n\r\n";
  EXPECT_EQ(::send(fd, req.data(), req.size(), 0),
            static_cast<ssize_t>(req.size()));
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(TelemetryHttpTest, ServesExpositionAnd404) {
  MetricsRegistry reg;
  reg.GetCounter("http_total", "H.")->Inc(9);
  auto server = MetricsHttpServer::ServeRegistry(0, &reg);
  ASSERT_TRUE(server.ok()) << server.status();
  const uint16_t port = (*server)->port();
  const std::string ok = HttpGet(port, "/metrics");
  EXPECT_NE(ok.find("200 OK"), std::string::npos) << ok;
  EXPECT_NE(ok.find("text/plain; version=0.0.4"), std::string::npos) << ok;
  EXPECT_NE(ok.find("http_total 9"), std::string::npos) << ok;
  const std::string missing = HttpGet(port, "/nope");
  EXPECT_NE(missing.find("404"), std::string::npos) << missing;
  EXPECT_GE((*server)->requests_served(), 2u);
  (*server)->Stop();
}

// ---- End-to-end family coverage ---------------------------------------------

// One daemon + one registered client over a real Unix socket + a KvStore:
// after light traffic, a single exposition must cover the SMA, SMD, IPC,
// and KV metric families — the acceptance bar for the scrape endpoints.
TEST(TelemetryE2ETest, ExpositionCoversSmaSmdIpcKvFamilies) {
  // IPC counters are hardwired to the global registry, so the test threads
  // everything through it (labels keep instances distinguishable).
  MetricsRegistry& reg = MetricsRegistry::Global();

  SmdOptions smd_opts;
  smd_opts.capacity_pages = 2048;
  smd_opts.initial_grant_pages = 128;
  smd_opts.metrics = &reg;
  smd_opts.metrics_instance = "e2e_smd";
  SoftMemoryDaemon daemon(smd_opts);
  DaemonServer server(&daemon);
  auto listener = UnixSocketListener::Bind(
      "/tmp/softmem_telemetry_e2e_" + std::to_string(::getpid()) + ".sock");
  ASSERT_TRUE(listener.ok()) << listener.status();
  server.ServeListener(listener->get());

  auto channel = ConnectUnixSocket((*listener)->path());
  ASSERT_TRUE(channel.ok()) << channel.status();
  auto client = DaemonClient::Register(std::move(channel).value(), "e2e_kv");
  ASSERT_TRUE(client.ok()) << client.status();

  SmaOptions sma_opts;
  sma_opts.metrics = &reg;
  sma_opts.metrics_instance = "e2e_sma";
  sma_opts.region_pages = 16 * 1024;
  sma_opts.initial_budget_pages = (*client)->initial_budget_pages();
  auto sma = SoftMemoryAllocator::Create(sma_opts, client->get());
  ASSERT_TRUE(sma.ok()) << sma.status();
  (*client)->AttachAllocator(sma->get());

  KvStore store(sma->get(), {}, MonotonicClock::Get(), &reg);
  EXPECT_EQ(store.Execute({"SET", "k", "v"}).type, RespType::kSimpleString);
  EXPECT_EQ(store.Execute({"GET", "k"}).type, RespType::kBulkString);

  // Both surfaces — the daemon-side endpoint text and the RESP METRICS
  // reply — carry all four families.
  const RespValue metrics_reply = store.Execute({"METRICS"});
  ASSERT_EQ(metrics_reply.type, RespType::kBulkString);
  for (const std::string& text : {reg.RenderPrometheus(), metrics_reply.str}) {
    EXPECT_NE(text.find("softmem_sma_allocs_total"), std::string::npos);
    EXPECT_NE(text.find("softmem_smd_requests_total"), std::string::npos);
    EXPECT_NE(text.find("softmem_ipc_messages_sent_total"),
              std::string::npos);
    EXPECT_NE(text.find("softmem_kv_commands_total"), std::string::npos);
    EXPECT_NE(text.find("instance=\"e2e_smd\""), std::string::npos);
  }

  server.Stop();
}

// METRICS with a null registry degrades to an error, not a crash.
TEST(TelemetryE2ETest, KvMetricsCommandWithoutRegistryErrors) {
  SmaOptions o;
  o.region_pages = 1024;
  o.initial_budget_pages = 256;
  auto sma = SoftMemoryAllocator::Create(o);
  ASSERT_TRUE(sma.ok());
  KvStore store(sma->get(), {}, MonotonicClock::Get(), nullptr);
  EXPECT_EQ(store.Execute({"METRICS"}).type, RespType::kError);
  EXPECT_EQ(store.Execute({"PING"}).type, RespType::kSimpleString);
}

}  // namespace
}  // namespace telemetry
}  // namespace softmem
