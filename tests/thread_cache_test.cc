// Tests for the per-thread magazine cache (src/sma/thread_cache.h): exact
// accounting despite parked slots, the reclaim revocation protocol, context
// teardown with outstanding magazines, the budget-denial drain rescue, and
// thread-exit / allocator-death lifetime handling.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "src/common/units.h"
#include "src/sma/soft_memory_allocator.h"

namespace softmem {
namespace {

std::unique_ptr<SoftMemoryAllocator> MakeSma(size_t pages = 1024) {
  SmaOptions o;
  o.region_pages = pages;
  o.initial_budget_pages = pages;
  o.heap_retain_empty_pages = 0;
  o.use_mmap = false;
  auto r = SoftMemoryAllocator::Create(o);
  EXPECT_TRUE(r.ok());
  return std::move(r).value();
}

ContextId MakeUncachedContext(SoftMemoryAllocator* sma, const char* name) {
  ContextOptions co;
  co.name = name;
  co.mode = ReclaimMode::kNone;  // cache-eligible
  auto ctx = sma->CreateContext(co);
  EXPECT_TRUE(ctx.ok());
  return *ctx;
}

TEST(ThreadCacheTest, StatsStayExactWithCachedOps) {
  auto sma = MakeSma();
  const ContextId ctx = MakeUncachedContext(sma.get(), "worker");
  std::vector<void*> live;
  for (int i = 0; i < 1000; ++i) {
    void* p = sma->SoftMalloc(ctx, 64);
    ASSERT_NE(p, nullptr);
    live.push_back(p);
  }
  // Free half: many of these land in this thread's magazines, yet stats
  // must still count every completed operation (snapshots drain first).
  for (int i = 0; i < 500; ++i) {
    sma->SoftFree(live[i]);
  }
  SmaStats s = sma->GetStats();
  EXPECT_EQ(s.total_allocs, 1000u);
  EXPECT_EQ(s.total_frees, 500u);
  EXPECT_EQ(s.live_allocations, 500u);
  EXPECT_EQ(s.committed_pages, s.pooled_pages + s.in_use_pages);
  for (int i = 500; i < 1000; ++i) {
    sma->SoftFree(live[i]);
  }
  s = sma->GetStats();
  EXPECT_EQ(s.total_frees, 1000u);
  EXPECT_EQ(s.live_allocations, 0u);
}

TEST(ThreadCacheTest, CachedSlotsAreReusedNotLeaked) {
  auto sma = MakeSma();
  const ContextId ctx = MakeUncachedContext(sma.get(), "worker");
  // Alloc/free churn over one size class must stabilize on a handful of
  // pages: magazine slots are recycled, not treated as live.
  for (int round = 0; round < 100; ++round) {
    std::vector<void*> batch;
    for (int i = 0; i < 128; ++i) {
      void* p = sma->SoftMalloc(ctx, 128);
      ASSERT_NE(p, nullptr);
      batch.push_back(p);
    }
    for (void* p : batch) {
      sma->SoftFree(p);
    }
  }
  const SmaStats s = sma->GetStats();
  EXPECT_EQ(s.live_allocations, 0u);
  // 128 concurrent 128-byte slots fit in 4 pages; allow slack for the
  // magazine high-water mark, but the churn must not accumulate pages.
  EXPECT_LE(s.committed_pages, 16u);
}

TEST(ThreadCacheTest, ReclaimDemandRevokesParkedSlots) {
  auto sma = MakeSma(32);
  const ContextId ctx = MakeUncachedContext(sma.get(), "worker");
  std::vector<void*> live;
  for (int i = 0; i < 20 * 64; ++i) {  // 20 pages of 64-byte slots
    void* p = sma->SoftMalloc(ctx, 64);
    ASSERT_NE(p, nullptr);
    live.push_back(p);
  }
  for (void* p : live) {
    sma->SoftFree(p);
  }
  // Some slots are still parked in this thread's magazines, pinning their
  // page. A reclaim demand must revoke them and reach the full region.
  const size_t produced = sma->HandleReclaimDemand(32);
  EXPECT_EQ(produced, 32u);
  const SmaStats s = sma->GetStats();
  EXPECT_EQ(s.budget_pages, 0u);
  EXPECT_EQ(s.committed_pages, 0u);
  EXPECT_GE(s.cache_revocations, 1u);
}

TEST(ThreadCacheTest, BudgetDenialDrainsCachesBeforeFailing) {
  auto sma = MakeSma(8);  // 8-page region and budget, no daemon to ask
  const ContextId ctx = MakeUncachedContext(sma.get(), "worker");
  std::vector<void*> live;
  for (int i = 0; i < 8 * 64; ++i) {  // fill all 8 pages with 64-byte slots
    void* p = sma->SoftMalloc(ctx, 64);
    ASSERT_NE(p, nullptr);
    live.push_back(p);
  }
  for (void* p : live) {
    sma->SoftFree(p);
  }
  // The last page's slots are parked in this thread's magazine, so the pool
  // holds at most 7 contiguous pages. An 8-page run must still succeed:
  // the denial path revokes magazines before giving up.
  void* big = sma->SoftMalloc(8 * kPageSize);
  EXPECT_NE(big, nullptr);
  sma->SoftFree(big);
}

TEST(ThreadCacheTest, DestroyContextWithParkedMagazines) {
  auto sma = MakeSma();
  const ContextId ctx = MakeUncachedContext(sma.get(), "doomed");
  std::vector<void*> freed;
  for (int i = 0; i < 200; ++i) {
    void* p = sma->SoftMalloc(ctx, 256);
    ASSERT_NE(p, nullptr);
    if (i % 2 == 0) {
      freed.push_back(p);
    }
  }
  for (void* p : freed) {
    sma->SoftFree(p);  // parks slots of `ctx` in this thread's magazine
  }
  ASSERT_TRUE(sma->DestroyContext(ctx).ok());
  const SmaStats s = sma->GetStats();
  EXPECT_EQ(s.live_allocations, 0u);
  EXPECT_EQ(s.in_use_pages, 0u);
  // A fresh context must be able to reuse everything.
  const ContextId next = MakeUncachedContext(sma.get(), "next");
  void* p = sma->SoftMalloc(next, 256);
  EXPECT_NE(p, nullptr);
  sma->SoftFree(p);
}

TEST(ThreadCacheTest, WorkerThreadExitFlushesItsMagazines) {
  auto sma = MakeSma();
  const ContextId ctx = MakeUncachedContext(sma.get(), "worker");
  std::thread worker([&] {
    std::vector<void*> live;
    for (int i = 0; i < 300; ++i) {
      void* p = sma->SoftMalloc(ctx, 64);
      ASSERT_NE(p, nullptr);
      live.push_back(p);
    }
    for (void* p : live) {
      sma->SoftFree(p);
    }
    // Thread exits with slots parked; the TLS destructor must flush them
    // and unregister the cache.
  });
  worker.join();
  const SmaStats s = sma->GetStats();
  EXPECT_EQ(s.live_allocations, 0u);
  EXPECT_EQ(s.total_allocs, 300u);
  EXPECT_EQ(s.total_frees, 300u);
  // Post-join revocation must not touch the dead thread's cache (it would
  // be a use-after-free caught by the sanitizer builds).
  sma->HandleReclaimDemand(4);
}

TEST(ThreadCacheTest, AllocatorDeathBeforeThreadExitIsSafe) {
  std::atomic<int> phase{0};
  std::thread worker;
  {
    auto sma = MakeSma();
    const ContextId ctx = MakeUncachedContext(sma.get(), "worker");
    worker = std::thread([&] {
      std::vector<void*> live;
      for (int i = 0; i < 100; ++i) {
        void* p = sma->SoftMalloc(ctx, 64);
        ASSERT_NE(p, nullptr);
        live.push_back(p);
      }
      for (void* p : live) {
        sma->SoftFree(p);
      }
      phase.store(1);
      while (phase.load() != 2) {
        std::this_thread::yield();
      }
      // Exits *after* the allocator died: the flush must detect that and
      // drop the cache instead of touching freed memory.
    });
    while (phase.load() != 1) {
      std::this_thread::yield();
    }
    // Allocator (and its pages) destroyed here, magazines still parked.
  }
  phase.store(2);
  worker.join();

  // A new allocator created afterwards (possibly at the same address) must
  // not be confused with the dead one.
  auto sma2 = MakeSma();
  const ContextId ctx2 = MakeUncachedContext(sma2.get(), "fresh");
  void* p = sma2->SoftMalloc(ctx2, 64);
  EXPECT_NE(p, nullptr);
  sma2->SoftFree(p);
  EXPECT_EQ(sma2->GetStats().live_allocations, 0u);
}

TEST(ThreadCacheTest, TwoAllocatorsKeepSeparateCaches) {
  auto a = MakeSma();
  auto b = MakeSma();
  const ContextId ca = MakeUncachedContext(a.get(), "a");
  const ContextId cb = MakeUncachedContext(b.get(), "b");
  std::vector<void*> pa, pb;
  for (int i = 0; i < 100; ++i) {
    pa.push_back(a->SoftMalloc(ca, 64));
    pb.push_back(b->SoftMalloc(cb, 64));
    ASSERT_NE(pa.back(), nullptr);
    ASSERT_NE(pb.back(), nullptr);
  }
  for (int i = 0; i < 100; ++i) {
    a->SoftFree(pa[i]);
    b->SoftFree(pb[i]);
  }
  EXPECT_EQ(a->GetStats().live_allocations, 0u);
  EXPECT_EQ(b->GetStats().live_allocations, 0u);
  EXPECT_EQ(a->GetStats().total_allocs, 100u);
  EXPECT_EQ(b->GetStats().total_allocs, 100u);
}

TEST(ThreadCacheTest, BigLockModeStillWorks) {
  SmaOptions o;
  o.region_pages = 256;
  o.initial_budget_pages = 256;
  o.heap_retain_empty_pages = 0;
  o.use_mmap = false;
  o.thread_cache = false;  // the seed behavior, kept as contention baseline
  auto r = SoftMemoryAllocator::Create(o);
  ASSERT_TRUE(r.ok());
  auto sma = std::move(r).value();
  const ContextId ctx = MakeUncachedContext(sma.get(), "worker");
  std::vector<void*> live;
  for (int i = 0; i < 500; ++i) {
    void* p = sma->SoftMalloc(ctx, 64);
    ASSERT_NE(p, nullptr);
    live.push_back(p);
  }
  for (void* p : live) {
    sma->SoftFree(p);
  }
  const SmaStats s = sma->GetStats();
  EXPECT_EQ(s.live_allocations, 0u);
  EXPECT_EQ(s.cache_revocations, 0u);
}

}  // namespace
}  // namespace softmem
