#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <vector>

#include "src/baseline/system_allocator.h"
#include "src/baseline/textbook_allocator.h"
#include "src/workload/alloc_trace.h"
#include "src/workload/generators.h"

namespace softmem {
namespace {

// ---- Zipfian ---------------------------------------------------------------------

TEST(ZipfianTest, StaysInRange) {
  ZipfianGenerator gen(1000, 0.99, 42);
  for (int i = 0; i < 100000; ++i) {
    EXPECT_LT(gen.Next(), 1000u);
  }
}

TEST(ZipfianTest, IsSkewedTowardsLowRanks) {
  ZipfianGenerator gen(10000, 0.99, 7);
  constexpr int kSamples = 200000;
  int head = 0;  // hits in the top 1% of items
  for (int i = 0; i < kSamples; ++i) {
    if (gen.Next() < 100) {
      ++head;
    }
  }
  // With theta=0.99 the top 1% draws well over a third of accesses;
  // a uniform distribution would get ~1%.
  EXPECT_GT(head, kSamples / 3);
}

TEST(ZipfianTest, DeterministicAcrossInstances) {
  ZipfianGenerator a(5000, 0.99, 11);
  ZipfianGenerator b(5000, 0.99, 11);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(ZipfianTest, MostPopularItemMatchesTheory) {
  ZipfianGenerator gen(1000, 0.99, 3);
  constexpr int kSamples = 300000;
  int zero_hits = 0;
  for (int i = 0; i < kSamples; ++i) {
    if (gen.Next() == 0) {
      ++zero_hits;
    }
  }
  const double expected = gen.ItemProbability(0) * kSamples;
  EXPECT_NEAR(zero_hits, expected, expected * 0.15);
}

TEST(UniformTest, CoversRange) {
  UniformGenerator gen(10, 5);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) {
    ++counts[gen.Next()];
  }
  for (int c : counts) {
    EXPECT_GT(c, 700);
  }
}

// ---- Value sizes / keys --------------------------------------------------------

TEST(ValueSizeTest, FixedAlwaysSame) {
  ValueSizeGenerator gen(ValueSizeGenerator::Kind::kFixed, 77, 0, 1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(gen.Next(), 77u);
  }
}

TEST(ValueSizeTest, UniformInBounds) {
  ValueSizeGenerator gen(ValueSizeGenerator::Kind::kUniform, 10, 20, 1);
  for (int i = 0; i < 10000; ++i) {
    const size_t v = gen.Next();
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(ValueSizeTest, BimodalMixes) {
  ValueSizeGenerator gen(ValueSizeGenerator::Kind::kBimodal, 64, 4096, 1);
  int big = 0;
  for (int i = 0; i < 10000; ++i) {
    const size_t v = gen.Next();
    EXPECT_TRUE(v == 64 || v == 4096);
    if (v == 4096) {
      ++big;
    }
  }
  EXPECT_NEAR(big, 1000, 300);
}

TEST(KeyValueHelpersTest, DeterministicAndSized) {
  EXPECT_EQ(MakeKey(42, 6), "key:000042");
  EXPECT_EQ(MakeKey(42, 6), MakeKey(42, 6));
  const std::string v = MakeValue(9, 100);
  EXPECT_EQ(v.size(), 100u);
  EXPECT_EQ(v, MakeValue(9, 100));
  EXPECT_NE(v, MakeValue(10, 100));
}

// ---- Alloc traces -----------------------------------------------------------------

TEST(AllocTraceTest, WellFormed) {
  AllocTraceOptions opts;
  opts.operations = 5000;
  opts.seed = 9;
  const auto trace = GenerateAllocTrace(opts);
  std::map<uint32_t, bool> live;
  size_t allocs = 0;
  size_t frees = 0;
  for (const AllocOp& op : trace) {
    if (op.kind == AllocOp::Kind::kAlloc) {
      EXPECT_FALSE(live.count(op.slot));
      EXPECT_GE(op.size, opts.min_size);
      EXPECT_LE(op.size, opts.max_size);
      live[op.slot] = true;
      ++allocs;
    } else {
      ASSERT_TRUE(live.count(op.slot)) << "free of dead slot " << op.slot;
      live.erase(op.slot);
      ++frees;
    }
  }
  EXPECT_TRUE(live.empty()) << "trace must end fully drained";
  EXPECT_EQ(allocs, frees);
}

TEST(AllocTraceTest, FifoLifetimesFreeOldestFirst) {
  AllocTraceOptions opts;
  opts.operations = 2000;
  opts.fifo_lifetimes = true;
  const auto trace = GenerateAllocTrace(opts);
  uint32_t last_freed = 0;
  bool first = true;
  for (const AllocOp& op : trace) {
    if (op.kind == AllocOp::Kind::kFree) {
      if (!first) {
        EXPECT_GT(op.slot, last_freed);
      }
      last_freed = op.slot;
      first = false;
    }
  }
}

// ---- Baseline allocators ------------------------------------------------------------

TEST(TextbookAllocatorTest, TraceReplayWithPatternCheck) {
  auto alloc = TextbookAllocator::Create(16 * 1024, /*use_mmap=*/false);
  ASSERT_TRUE(alloc.ok());
  AllocTraceOptions opts;
  opts.operations = 20000;
  opts.max_size = 8192;  // exercise the large path too
  const auto trace = GenerateAllocTrace(opts);

  std::map<uint32_t, std::pair<char*, uint32_t>> live;
  for (const AllocOp& op : trace) {
    if (op.kind == AllocOp::Kind::kAlloc) {
      auto* p = static_cast<char*>((*alloc)->Alloc(op.size));
      ASSERT_NE(p, nullptr);
      std::memset(p, op.slot % 251, op.size);
      live[op.slot] = {p, op.size};
    } else {
      auto [p, size] = live.at(op.slot);
      for (uint32_t b = 0; b < size; b += 61) {
        ASSERT_EQ(static_cast<unsigned char>(p[b]), op.slot % 251);
      }
      (*alloc)->Free(p);
      live.erase(op.slot);
    }
  }
  EXPECT_EQ((*alloc)->live_allocations(), 0u);
}

TEST(SystemAllocatorTest, BasicContract) {
  SystemAllocator alloc;
  void* p = alloc.Alloc(128);
  ASSERT_NE(p, nullptr);
  std::memset(p, 1, 128);
  alloc.Free(p);
}

}  // namespace
}  // namespace softmem
